"""Unit tests for loss processes and the multicast channel."""

import random

import pytest

from repro.network.channel import MulticastChannel
from repro.network.loss import BernoulliLoss, GilbertElliottLoss


class TestBernoulliLoss:
    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.0)
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)

    def test_zero_loss_never_loses(self):
        rng = random.Random(1)
        loss = BernoulliLoss(0.0)
        assert not any(loss.lost(rng) for __ in range(1000))

    def test_rate_converges(self):
        rng = random.Random(2)
        loss = BernoulliLoss(0.2)
        observed = sum(loss.lost(rng) for __ in range(50_000)) / 50_000
        assert observed == pytest.approx(0.2, abs=0.01)
        assert loss.mean_loss == 0.2


class TestGilbertElliott:
    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_bad_to_good=-0.1)
        with pytest.raises(ValueError):
            GilbertElliottLoss(bad_loss=1.5)
        with pytest.raises(ValueError):
            GilbertElliottLoss(good_loss=-0.5)

    def test_no_transitions_rejected(self):
        """Both transition probs zero: no stationary mean exists."""
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=0.0, p_bad_to_good=0.0)

    def test_absorbing_good_state(self):
        """p_good_to_bad=0: the chain never leaves good; mean is good_loss."""
        loss = GilbertElliottLoss(
            p_good_to_bad=0.0, p_bad_to_good=0.3, good_loss=0.0, bad_loss=0.9
        )
        assert loss.mean_loss == pytest.approx(0.0)
        rng = random.Random(11)
        assert not any(loss.lost(rng) for __ in range(5000))

    def test_absorbing_bad_state(self):
        """p_bad_to_good=0: once bad, always bad; mean is bad_loss."""
        loss = GilbertElliottLoss(
            p_good_to_bad=1.0, p_bad_to_good=0.0, good_loss=0.0, bad_loss=1.0
        )
        assert loss.mean_loss == pytest.approx(1.0)
        rng = random.Random(12)
        outcomes = [loss.lost(rng) for __ in range(100)]
        # First draw transitions into bad, so every packet is lost.
        assert all(outcomes)

    def test_degenerate_single_state_oscillation(self):
        """p=1 both ways: the chain alternates states every packet."""
        loss = GilbertElliottLoss(
            p_good_to_bad=1.0, p_bad_to_good=1.0, good_loss=0.0, bad_loss=1.0
        )
        assert loss.mean_loss == pytest.approx(0.5)
        rng = random.Random(13)
        outcomes = [loss.lost(rng) for __ in range(1000)]
        # Strict alternation: bad, good, bad, good, ...
        assert outcomes[0::2] == [True] * 500
        assert outcomes[1::2] == [False] * 500

    def test_stationary_mean(self):
        loss = GilbertElliottLoss(
            p_good_to_bad=0.1, p_bad_to_good=0.3, good_loss=0.0, bad_loss=0.4
        )
        assert loss.mean_loss == pytest.approx(0.1 / 0.4 * 0.4)

    def test_empirical_mean_matches_stationary(self):
        rng = random.Random(3)
        loss = GilbertElliottLoss(
            p_good_to_bad=0.05, p_bad_to_good=0.25, good_loss=0.01, bad_loss=0.5
        )
        observed = sum(loss.lost(rng) for __ in range(200_000)) / 200_000
        assert observed == pytest.approx(loss.mean_loss, abs=0.01)

    def test_burstiness(self):
        """Losses cluster: P[loss | previous loss] > P[loss]."""
        rng = random.Random(4)
        loss = GilbertElliottLoss(
            p_good_to_bad=0.02, p_bad_to_good=0.2, good_loss=0.0, bad_loss=0.6
        )
        outcomes = [loss.lost(rng) for __ in range(100_000)]
        after_loss = [b for a, b in zip(outcomes, outcomes[1:]) if a]
        conditional = sum(after_loss) / len(after_loss)
        marginal = sum(outcomes) / len(outcomes)
        assert conditional > marginal * 2


class TestMulticastChannel:
    def test_subscribe_and_unsubscribe(self):
        channel = MulticastChannel(seed=0)
        channel.subscribe("a", BernoulliLoss(0.0))
        assert channel.receiver_count == 1
        channel.unsubscribe("a")
        assert channel.receiver_count == 0
        channel.unsubscribe("a")  # idempotent

    def test_duplicate_subscribe_rejected(self):
        channel = MulticastChannel(seed=0)
        channel.subscribe("a", BernoulliLoss(0.0))
        with pytest.raises(ValueError):
            channel.subscribe("a", BernoulliLoss(0.0))

    def test_loss_of_unknown_raises(self):
        with pytest.raises(KeyError):
            MulticastChannel(seed=0).loss_of("ghost")

    def test_lossless_multicast_reaches_everyone(self):
        channel = MulticastChannel(seed=0)
        for i in range(10):
            channel.subscribe(f"r{i}", BernoulliLoss(0.0))
        report = channel.multicast("pkt")
        assert report.fully_delivered
        assert len(report.delivered_to) == 10

    def test_certain_loss_reaches_no_one(self):
        channel = MulticastChannel(seed=0)
        channel.subscribe("r", BernoulliLoss(0.999999999))
        report = channel.multicast("pkt")
        assert report.lost_at == {"r"}

    def test_audience_scopes_the_report(self):
        channel = MulticastChannel(seed=0)
        for i in range(5):
            channel.subscribe(f"r{i}", BernoulliLoss(0.0))
        report = channel.multicast("pkt", audience={"r1", "r3"})
        assert report.delivered_to == {"r1", "r3"}

    def test_audience_ignores_unsubscribed(self):
        channel = MulticastChannel(seed=0)
        channel.subscribe("r0", BernoulliLoss(0.0))
        report = channel.multicast("pkt", audience={"r0", "ghost"})
        assert report.delivered_to == {"r0"}

    def test_counters(self):
        channel = MulticastChannel(seed=1)
        channel.subscribe("a", BernoulliLoss(0.0))
        channel.subscribe("b", BernoulliLoss(0.5))
        for __ in range(100):
            channel.multicast("pkt")
        assert channel.packets_sent == 100
        assert channel.receptions + channel.losses == 200

    def test_reproducible_with_seed(self):
        def run(seed):
            channel = MulticastChannel(seed=seed)
            channel.subscribe("a", BernoulliLoss(0.3))
            return [bool(channel.multicast(i).delivered_to) for i in range(50)]

        assert run(9) == run(9)
        assert run(9) != run(10)


class TestPerReceiverStreams:
    """Satellite regression: every receiver draws from its own RNG stream,
    so changing the rest of the subscription set never shifts its draws."""

    @staticmethod
    def _outcomes(channel, receiver_id, packets=60):
        results = []
        for i in range(packets):
            report = channel.multicast(i)
            results.append(receiver_id in report.delivered_to)
        return results

    def test_unsubscribing_neighbor_does_not_shift_draws(self):
        alone = MulticastChannel(seed=5)
        alone.subscribe("keeper", BernoulliLoss(0.4))
        baseline = self._outcomes(alone, "keeper")

        crowded = MulticastChannel(seed=5)
        crowded.subscribe("keeper", BernoulliLoss(0.4))
        for i in range(8):
            crowded.subscribe(f"other{i}", BernoulliLoss(0.4))
        interleaved = []
        for i in range(60):
            if i == 20:
                for j in range(4):
                    crowded.unsubscribe(f"other{j}")
            if i == 40:
                crowded.subscribe("latecomer", BernoulliLoss(0.9))
            report = crowded.multicast(i)
            interleaved.append("keeper" in report.delivered_to)
        assert interleaved == baseline

    def test_streams_differ_between_receivers(self):
        channel = MulticastChannel(seed=5)
        channel.subscribe("a", BernoulliLoss(0.5))
        channel.subscribe("b", BernoulliLoss(0.5))
        a_draws = [channel.stream_of("a").random() for __ in range(20)]
        b_draws = [channel.stream_of("b").random() for __ in range(20)]
        assert a_draws != b_draws

    def test_stream_stable_across_processes(self):
        """str-seeded Random uses sha512, not PYTHONHASHSEED — pin a draw."""
        channel = MulticastChannel(seed=0)
        channel.subscribe("m0", BernoulliLoss(0.5))
        expected = random.Random("0/m0").random()
        assert channel.stream_of("m0").random() == expected

    def test_stream_of_unknown_raises(self):
        with pytest.raises(KeyError):
            MulticastChannel(seed=0).stream_of("ghost")

    def test_resubscribe_restarts_stream(self):
        channel = MulticastChannel(seed=3)
        channel.subscribe("r", BernoulliLoss(0.5))
        first = [channel.stream_of("r").random() for __ in range(5)]
        channel.unsubscribe("r")
        channel.subscribe("r", BernoulliLoss(0.5))
        assert [channel.stream_of("r").random() for __ in range(5)] == first


class TestUnsubscribeMidDelivery:
    """Satellite edge case: a receiver departing while a multicast round is
    in flight must simply drop out, not corrupt the report."""

    def test_unsubscribe_during_draw_is_skipped(self):
        channel = MulticastChannel(seed=0)

        class Evicting(BernoulliLoss):
            """A loss process that unsubscribes a *different* receiver the
            moment its own draw runs (models a departure event firing
            between per-receiver draws of one packet)."""

            def __init__(self, victim):
                super().__init__(0.0)
                self.victim = victim

            def lost(self, rng):
                channel.unsubscribe(self.victim)
                return False

        channel.subscribe("a", Evicting("b"))
        channel.subscribe("b", BernoulliLoss(0.0))
        channel.subscribe("c", BernoulliLoss(0.0))
        # No audience: targets iterate in (deterministic) subscription
        # order, so a's draw runs — and evicts b — before b's would.
        report = channel.multicast("pkt")
        assert "a" in report.delivered_to
        assert "c" in report.delivered_to
        # b was unsubscribed mid-round: absent from both outcome sets.
        assert "b" not in report.delivered_to
        assert "b" not in report.lost_at
        assert "b" not in channel

    def test_self_unsubscribe_during_draw(self):
        channel = MulticastChannel(seed=0)

        class SelfEvicting(BernoulliLoss):
            def __init__(self):
                super().__init__(0.0)

            def lost(self, rng):
                channel.unsubscribe("a")
                return False

        channel.subscribe("a", SelfEvicting())
        channel.subscribe("b", BernoulliLoss(0.0))
        report = channel.multicast("pkt")
        # The departure lands for subsequent packets either way; the draw
        # already in flight may complete.
        assert "b" in report.delivered_to
        assert "a" not in channel
        follow_up = channel.multicast("pkt2")
        assert "a" not in follow_up.delivered_to
        assert "a" not in follow_up.lost_at
