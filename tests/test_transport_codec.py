"""Unit tests for the wire codec."""

import pytest

from repro.crypto.material import KeyGenerator
from repro.crypto.wrap import wrap_key
from repro.keytree.lkh import LkhRekeyer, RekeyMessage
from repro.keytree.tree import KeyTree
from repro.members.member import Member
from repro.transport.codec import (
    CodecError,
    decode_encrypted_key,
    decode_rekey_message,
    encode_encrypted_key,
    encode_rekey_message,
    wire_size,
)

from tests.helpers import populate


@pytest.fixture
def sample_key():
    gen = KeyGenerator(41)
    return wrap_key(gen.generate("wrapping", version=3), gen.generate("payload", version=7))


@pytest.fixture
def sample_message(keygen):
    tree = KeyTree(degree=4, keygen=keygen)
    rekeyer = LkhRekeyer(tree)
    populate(rekeyer, 32)
    return tree, rekeyer.rekey_batch(
        joins=[("late", None)], departures=["m3", "m9"]
    )


class TestEncryptedKeyCodec:
    def test_roundtrip(self, sample_key):
        decoded, offset = decode_encrypted_key(encode_encrypted_key(sample_key))
        assert decoded == sample_key
        assert offset == len(encode_encrypted_key(sample_key))

    def test_concatenated_records_parse_sequentially(self, sample_key):
        blob = encode_encrypted_key(sample_key) * 3
        offset = 0
        for __ in range(3):
            decoded, offset = decode_encrypted_key(blob, offset)
            assert decoded == sample_key
        assert offset == len(blob)

    def test_truncation_detected(self, sample_key):
        blob = encode_encrypted_key(sample_key)
        for cut in (1, 5, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CodecError):
                decode_encrypted_key(blob[:cut])


class TestMessageCodec:
    def test_roundtrip_preserves_everything(self, sample_message):
        __, message = sample_message
        decoded = decode_rekey_message(encode_rekey_message(message))
        assert decoded.group == message.group
        assert decoded.epoch == message.epoch
        assert decoded.joined == message.joined
        assert decoded.departed == message.departed
        assert decoded.encrypted_keys == message.encrypted_keys
        assert set(decoded.updated) == set(message.updated)

    def test_decoded_message_still_rekeys_members(self, sample_message):
        """The parse output is functionally a rekey message: a survivor can
        absorb it and reach the new root."""
        tree, message = sample_message
        decoded = decode_rekey_message(encode_rekey_message(message))
        survivor = Member("m0", tree.leaf_of("m0").key)
        for node in tree.path_of("m0"):
            survivor.install(node.key)
        survivor.process_rekey(decoded)
        root = tree.root.key
        assert survivor.holds(root.key_id, root.version)

    def test_empty_message_roundtrip(self):
        message = RekeyMessage(group="g", epoch=5)
        decoded = decode_rekey_message(encode_rekey_message(message))
        assert decoded.epoch == 5
        assert decoded.encrypted_keys == []

    def test_bad_magic_rejected(self, sample_message):
        __, message = sample_message
        blob = bytearray(encode_rekey_message(message))
        blob[0] ^= 0xFF
        with pytest.raises(CodecError):
            decode_rekey_message(bytes(blob))

    def test_trailing_bytes_rejected(self, sample_message):
        __, message = sample_message
        with pytest.raises(CodecError):
            decode_rekey_message(encode_rekey_message(message) + b"x")

    def test_truncation_rejected(self, sample_message):
        __, message = sample_message
        blob = encode_rekey_message(message)
        with pytest.raises(CodecError):
            decode_rekey_message(blob[: len(blob) - 3])

    def test_wire_size_scales_with_cost(self, sample_message):
        """One encrypted key is ~70-90 wire bytes; the paper's #keys metric
        maps linearly onto bytes."""
        __, message = sample_message
        size = wire_size(message)
        per_key = (size - wire_size(RekeyMessage(group="t/root", epoch=1))) / message.cost
        assert 60 <= per_key <= 120
