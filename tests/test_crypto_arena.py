"""Unit battery for the persistent secret arena (:mod:`repro.crypto.arena`).

Covers the slot lifecycle (append / retire / reclaim), generation
handles detecting reuse-after-free, the deferred-pack quiesce
discipline that pins ciphertext inputs before any in-place mutation,
and the env-flag resolution the rekeyers use.
"""

import pickle

import pytest

from repro.crypto.arena import ARENA_ENV, SecretArena, arena_enabled
from repro.crypto.bulk import PackedWraps, encrypt_wrap_rows
from repro.crypto.material import KEY_SIZE, KeyGenerator


def _secret(tag, filler):
    return bytes([filler]) * (KEY_SIZE - len(tag)) + tag


# ----------------------------------------------------------------------
# slot lifecycle
# ----------------------------------------------------------------------


def test_append_and_reads():
    a = SecretArena(_secret(b"a", 1), _secret(b"b", 2))
    assert a.slots == 2
    assert len(a.data) == 2 * KEY_SIZE
    assert a.bytes_at(0) == _secret(b"a", 1)
    assert bytes(a.view(1)) == _secret(b"b", 2)
    assert a.view(1).nbytes == KEY_SIZE


def test_write_in_place_refreshes_without_moving():
    a = SecretArena(_secret(b"a", 1))
    a.write(0, _secret(b"A", 9))
    assert a.slots == 1
    assert a.bytes_at(0) == _secret(b"A", 9)


def test_retire_then_reclaim_reuses_the_slot():
    a = SecretArena(_secret(b"a", 1), _secret(b"b", 2))
    a.retire(0)
    a.reclaim(0, _secret(b"c", 3))
    assert a.slots == 2  # no growth: the freelist slot was recycled
    assert a.bytes_at(0) == _secret(b"c", 3)
    assert a.bytes_at(1) == _secret(b"b", 2)
    stats = a.stats()
    assert stats["grown"] == 2
    assert stats["retired"] == 1
    assert stats["reused"] == 1


def test_handles_detect_reuse_after_free():
    a = SecretArena(_secret(b"a", 1))
    slot, gen = a.handle(0)
    assert a.is_current(slot, gen)
    a.retire(0)
    # The old tenant's handle is stale the moment the slot is retired...
    assert not a.is_current(slot, gen)
    a.reclaim(0, _secret(b"b", 2))
    # ...and stays stale for the next tenant, whose own handle is live.
    assert not a.is_current(slot, gen)
    new_slot, new_gen = a.handle(0)
    assert (new_slot, new_gen) != (slot, gen)
    assert a.is_current(new_slot, new_gen)
    assert not a.is_current(99, 0)  # never-allocated slot


def test_generation_counts_survive_many_tenancies():
    a = SecretArena(_secret(b"a", 1))
    handles = []
    for tenant in range(5):
        handles.append(a.handle(0))
        a.retire(0)
        a.reclaim(0, _secret(b"x", tenant + 10))
    live = a.handle(0)
    assert a.is_current(*live)
    for stale in handles:
        assert not a.is_current(*stale)
    assert a.stats()["retired"] == 5
    assert a.stats()["reused"] == 5


# ----------------------------------------------------------------------
# quiesce discipline: deferred packs pin before mutation
# ----------------------------------------------------------------------


def _pack_over(arena, slots, seed=9):
    """A deferred pack wrapping fresh payloads under arena-resident keys."""
    keygen = KeyGenerator(seed=seed)
    payloads = [keygen.generate(f"p{i}") for i in range(len(slots))]
    return PackedWraps(
        [f"w{s}" for s in slots],
        [1] * len(slots),
        [p.key_id for p in payloads],
        [p.version for p in payloads],
        list(slots),  # int slot handles, resolved against the arena
        [p.secret for p in payloads],
        group_keys=list(slots),
        arena=arena,
    )


def test_adopted_pack_is_pinned_before_mutation():
    a = SecretArena(_secret(b"a", 1), _secret(b"b", 2))
    pack = _pack_over(a, [0, 1])
    a.adopt(pack)
    expected = [pack.ciphertext_at(i) for i in range(len(pack))]

    b = SecretArena(_secret(b"a", 1), _secret(b"b", 2))
    pack2 = _pack_over(b, [0, 1])
    b.adopt(pack2)
    # Mutate every which way before the pack materializes: overwrite,
    # retire+reclaim, and grow (which would move the bytearray).
    b.write(0, _secret(b"X", 7))
    b.retire(1)
    b.reclaim(1, _secret(b"Y", 8))
    for _ in range(64):
        b.append(_secret(b"z", 5))
    assert [pack2.ciphertext_at(i) for i in range(len(pack2))] == expected


def test_quiesce_counts_and_clears():
    a = SecretArena(_secret(b"a", 1))
    pack = _pack_over(a, [0])
    a.adopt(pack)
    assert a.quiesce() == 1
    assert a.quiesce() == 0  # adoption list drained
    del pack
    other = _pack_over(a, [0])
    a.adopt(other)
    del other
    assert a.quiesce() == 0  # dead weakref costs nothing


def test_pinned_pack_pickles_and_matches():
    a = SecretArena(_secret(b"a", 1), _secret(b"b", 2))
    pack = _pack_over(a, [0, 1])
    a.adopt(pack)
    a.write(0, _secret(b"X", 7))  # forces the pin
    clone = pickle.loads(pickle.dumps(pack))
    assert [clone.ciphertext_at(i) for i in range(len(clone))] == [
        pack.ciphertext_at(i) for i in range(len(pack))
    ]


def test_arena_rows_equal_bytes_rows():
    """Slot-handle planning emits the same bytes as plain-bytes planning."""
    secrets = [_secret(bytes([65 + i]), i + 1) for i in range(6)]
    a = SecretArena(*secrets)
    keygen = KeyGenerator(seed=4)
    payloads = [keygen.generate(f"p{i}") for i in range(24)]
    w_ids = [f"w{i % 6}" for i in range(24)]
    columns = (
        w_ids,
        [2] * 24,
        [p.key_id for p in payloads],
        [p.version for p in payloads],
        [secrets[i % 6] for i in range(24)],
        [p.secret for p in payloads],
    )
    expected = encrypt_wrap_rows(*columns)
    via_views = encrypt_wrap_rows(
        columns[0],
        columns[1],
        columns[2],
        columns[3],
        [a.view(i % 6) for i in range(24)],
        columns[5],
        group_keys=[i % 6 for i in range(24)],
    )
    assert via_views == expected


# ----------------------------------------------------------------------
# env-flag resolution
# ----------------------------------------------------------------------


def test_arena_enabled_resolution(monkeypatch):
    monkeypatch.delenv(ARENA_ENV, raising=False)
    assert arena_enabled(None) is False
    assert arena_enabled(True) is True
    for value in ("1", "true", "YES", "on"):
        monkeypatch.setenv(ARENA_ENV, value)
        assert arena_enabled(None) is True
    monkeypatch.setenv(ARENA_ENV, "0")
    assert arena_enabled(None) is False
    monkeypatch.setenv(ARENA_ENV, "1")
    assert arena_enabled(False) is False  # explicit wins over env
