"""Structured event log: schema validation, clock stamping, probes."""

import pytest

from repro.obs import events


def test_emit_builds_valid_record():
    log = events.EventLog()
    record = log.emit("join", time=12.0, member_id="m1")
    assert record["record"] == "event"
    assert record["schema"] == events.SCHEMA_VERSION
    assert record["type"] == "join"
    assert record["member_id"] == "m1"
    events.validate_record(record)


def test_emit_stamps_time_from_clock():
    log = events.EventLog(clock=lambda: 99.5)
    record = log.emit("crash", epoch=3)
    assert record["time"] == 99.5


def test_emit_without_clock_stamps_none():
    log = events.EventLog()
    assert log.emit("crash", epoch=1)["time"] is None


def test_missing_required_field_rejected():
    log = events.EventLog()
    with pytest.raises(ValueError, match="missing fields"):
        log.emit("epoch", time=0.0, epoch=1, joins=2)  # no departures/cost


def test_unknown_type_rejected():
    log = events.EventLog()
    with pytest.raises(ValueError, match="unknown event type"):
        log.emit("sandwich", time=0.0)


def test_validate_record_checks_schema_version():
    record = {"record": "event", "schema": 999, "type": "crash",
              "time": 0.0, "epoch": 1}
    with pytest.raises(ValueError, match="schema"):
        events.validate_record(record)


def test_count_and_of_type():
    log = events.EventLog()
    log.emit("join", time=0.0, member_id="a")
    log.emit("join", time=1.0, member_id="b")
    log.emit("departure", time=2.0, member_id="a")
    assert log.count() == 3
    assert log.count("join") == 2
    assert [r["member_id"] for r in log.of_type("departure")] == ["a"]


def test_module_probe_is_noop_when_disabled():
    assert events.active_log() is None
    events.emit("join", time=0.0, member_id="never-recorded")


def test_logging_installs_and_restores():
    with events.logging() as log:
        assert events.active_log() is log
        events.emit("crash", time=5.0, epoch=2)
    assert events.active_log() is None
    assert log.count("crash") == 1


def test_every_event_type_has_a_schema():
    # The set the docs and the trace validator promise.
    v1 = {
        "join", "departure", "epoch", "retry_round", "abandonment",
        "resync", "crash", "sync_transition",
    }
    assert set(events.EVENT_TYPES_V1) == v1
    assert set(events.EVENT_TYPES) == v1 | {
        "dek_adopted", "epoch_latency", "resync_complete",
        "abandoned_unrecovered",
    }


def test_v1_records_stay_valid_and_v2_types_need_schema_2():
    # Backward compat: a schema-1 record with a v1 type still validates...
    events.validate_record(
        {"record": "event", "schema": 1, "type": "join",
         "time": 0.0, "member_id": "a"}
    )
    # ...but the latency types are schema-2 only.
    with pytest.raises(ValueError, match="unknown event type"):
        events.validate_record(
            {"record": "event", "schema": 1, "type": "dek_adopted",
             "time": 0.0, "member_id": "a", "epoch": 1,
             "latency": 1.0, "sync_state": "late"}
        )
    events.validate_record(
        {"record": "event", "schema": 2, "type": "dek_adopted",
         "time": 0.0, "member_id": "a", "epoch": 1,
         "latency": 1.0, "sync_state": "late"}
    )
