"""SyncTracker transitions must emit matching structured events.

Satellite contract: every state-machine transition the tracker *measures*
(its ``RecoveryEvent`` list, its state counts) is mirrored by a
``sync_transition``/``resync`` record in the active event log, carrying
the same member, states and measured costs — so a trace file alone can
reconstruct the recovery story a chaos report summarizes.
"""

from repro.faults.recovery import RecoveryEvent, SyncState, SyncTracker
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics


def drive(tracker):
    """in-sync -> lagging -> out-of-sync -> recovered, plus a lagging dip."""
    tracker.admit("m1", epoch=1)
    tracker.admit("m2", epoch=1)
    tracker.mark_lagging("m1", epoch=2, now=100.0)
    tracker.mark_out_of_sync("m1", epoch=2, now=130.0)
    tracker.mark_recovered("m1", epoch=3, now=190.0, keys_sent=5)
    tracker.mark_lagging("m2", epoch=3, now=150.0)
    tracker.mark_delivered("m2", epoch=3)


def test_transitions_emit_matching_events():
    with obs_events.logging() as log:
        tracker = SyncTracker()
        drive(tracker)

    transitions = log.of_type("sync_transition")
    assert [
        (t["member_id"], t["from_state"], t["to_state"]) for t in transitions
    ] == [
        ("m1", "in-sync", "lagging"),
        ("m1", "lagging", "out-of-sync"),
        ("m1", "out-of-sync", "in-sync"),
        ("m2", "in-sync", "lagging"),
        ("m2", "lagging", "in-sync"),
    ]
    # Timed transitions are stamped with the simulation time passed in.
    assert transitions[0]["time"] == 100.0
    assert transitions[1]["time"] == 130.0
    assert transitions[2]["time"] == 190.0


def test_resync_event_matches_measured_recovery():
    with obs_events.logging() as log:
        tracker = SyncTracker()
        drive(tracker)

    (measured,) = tracker.events
    assert isinstance(measured, RecoveryEvent)
    (resync,) = log.of_type("resync")
    assert resync["member_id"] == measured.member_id
    assert resync["keys_sent"] == measured.keys_sent
    assert resync["epochs_missed"] == measured.epochs_missed
    assert resync["latency"] == measured.latency
    assert measured.latency == 90.0
    assert measured.epochs_missed == 2


def test_counters_track_the_state_machine():
    with obs_metrics.collecting() as registry:
        tracker = SyncTracker()
        drive(tracker)
    assert registry.counter_total("sync.out_of_sync") == 1
    assert registry.counter_total("sync.recoveries") == 1
    assert registry.histogram("sync.recovery_keys").stats()["sum"] == 5


def test_out_of_sync_is_idempotent_in_the_log():
    with obs_events.logging() as log:
        tracker = SyncTracker()
        tracker.admit("m1", epoch=1)
        tracker.mark_out_of_sync("m1", epoch=2, now=10.0)
        tracker.mark_out_of_sync("m1", epoch=3, now=20.0)  # already out
        tracker.mark_delivered("m1", epoch=3)  # multicast can't repair
    assert log.count("sync_transition") == 1
    assert tracker.state_of("m1") is SyncState.OUT_OF_SYNC


def test_tracker_quiet_without_active_log():
    # No collector installed: the tracker still measures, nothing crashes.
    tracker = SyncTracker()
    drive(tracker)
    assert len(tracker.events) == 1
    assert tracker.counts()["in-sync"] == 2
