"""Unit tests for the Complete-Subtree broadcast-encryption extension."""

import math
import random

import pytest

from repro.crypto.material import KeyGenerator
from repro.keytree.subsetcover import (
    CompleteSubtreeCenter,
    CompleteSubtreeReceiver,
)


@pytest.fixture
def center():
    return CompleteSubtreeCenter(depth=6, keygen=KeyGenerator(101))  # 64 slots


def provision(center, slot):
    return CompleteSubtreeReceiver(slot, center.receiver_keys(slot))


class TestCenter:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompleteSubtreeCenter(depth=0)
        with pytest.raises(ValueError):
            CompleteSubtreeCenter(depth=41)

    def test_capacity(self, center):
        assert center.capacity == 64

    def test_node_keys_deterministic_and_distinct(self, center):
        assert center.node_key(3, 5) == center.node_key(3, 5)
        keys = {center.node_key(6, i).secret for i in range(64)}
        assert len(keys) == 64

    def test_receiver_gets_path_keys(self, center):
        keys = center.receiver_keys(13)
        assert len(keys) == 7  # depth + 1
        assert keys[0] == center.node_key(0, 0)
        assert keys[-1] == center.node_key(6, 13)

    def test_bounds(self, center):
        with pytest.raises(ValueError):
            center.receiver_keys(64)
        with pytest.raises(ValueError):
            center.revoke(-1)
        with pytest.raises(ValueError):
            center.node_key(7, 0)


class TestCover:
    def test_no_revocations_is_root(self, center):
        assert center.cover() == [(0, 0)]

    def test_all_revoked_is_empty(self, center):
        for slot in range(64):
            center.revoke(slot)
        assert center.cover() == []

    def test_single_revocation_cover_is_depth_nodes(self, center):
        center.revoke(21)
        cover = center.cover()
        assert len(cover) == center.depth  # one sibling subtree per level

    def test_cover_partitions_the_non_revoked(self, center):
        rng = random.Random(3)
        revoked = set(rng.sample(range(64), 9))
        for slot in revoked:
            center.revoke(slot)
        covered = set()
        for depth, index in center.cover():
            span = 1 << (center.depth - depth)
            block = set(range(index * span, index * span + span))
            assert not block & covered, "cover nodes must be disjoint"
            covered |= block
        assert covered == set(range(64)) - revoked

    @pytest.mark.parametrize("r", [1, 2, 4, 8, 16])
    def test_cover_size_within_r_log_bound(self, r):
        center = CompleteSubtreeCenter(depth=10, keygen=KeyGenerator(5))
        rng = random.Random(r)
        for slot in rng.sample(range(center.capacity), r):
            center.revoke(slot)
        bound = r * math.log2(center.capacity / r) + r
        assert len(center.cover()) <= bound


class TestBroadcast:
    def test_non_revoked_receivers_extract_session_key(self, center):
        session = KeyGenerator(7).generate("session", version=1)
        center.revoke(3)
        center.revoke(40)
        broadcast = center.broadcast(session)
        for slot in (0, 10, 39, 63):
            receiver = provision(center, slot)
            assert receiver.extract(broadcast) == session

    def test_revoked_receiver_locked_out(self, center):
        session = KeyGenerator(7).generate("session", version=1)
        receiver = provision(center, 3)  # provisioned BEFORE revocation
        center.revoke(3)
        broadcast = center.broadcast(session)
        with pytest.raises(KeyError):
            receiver.extract(broadcast)

    def test_statelessness_receiver_never_updates(self, center):
        """The defining property: a receiver that slept through any number
        of revocations still extracts the current session key from a
        single fresh broadcast, with its original keys."""
        receiver = provision(center, 50)
        gen = KeyGenerator(8)
        for round_index, slot in enumerate((1, 2, 3, 17, 33)):
            center.revoke(slot)
            session = gen.generate("session", version=round_index)
            assert receiver.extract(center.broadcast(session)) == session

    def test_colluding_revoked_receivers_stay_out(self, center):
        """Two revoked receivers pooling their path keys still hold no
        cover key (every cover subtree is revoked-free by construction)."""
        a, b = provision(center, 3), provision(center, 40)
        center.revoke(3)
        center.revoke(40)
        session = KeyGenerator(7).generate("session", version=1)
        broadcast = center.broadcast(session)
        pooled = CompleteSubtreeReceiver(
            3, center.receiver_keys(3) + center.receiver_keys(40)
        )
        # Rebuild pooled from both *original* key sets (pre-revocation).
        with pytest.raises(KeyError):
            pooled.extract(broadcast)

    def test_broadcast_cost_tracks_cover_size(self, center):
        center.revoke(5)
        session = KeyGenerator(7).generate("session", version=1)
        assert len(center.broadcast(session)) == len(center.cover())
