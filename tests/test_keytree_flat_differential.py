"""The differential-equivalence battery gating the flat-array kernel.

The flat kernel (:mod:`repro.keytree.flat`) rewrites the hottest
correctness-critical path in the repository, so it is admitted only on
proof of *byte identity*: driven through identical churn traces, object
and flat kernels must emit identical :class:`RekeyMessage` payloads —
same wrap order, same versions, same ciphertext bytes — plus equal
:class:`WrapIndex` closures and equal per-receiver decrypt behavior.

Traces come from two sources: hypothesis-generated operation programs
(shrinkable counterexamples) and pinned-seed random mixes (stable
regression anchors).  Both run under eager and deferred wrapping, and
the sharded variant is checked across all three executor backends.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.material import KeyGenerator
from repro.crypto.wrap import WrapIndex, deferred_wraps
from repro.keytree.flat import FlatKeyTree, FlatRekeyer
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.serialize import tree_to_dict
from repro.keytree.tree import KeyTree
from repro.members.member import Member
from repro.server.sharded import ShardedOneTreeServer

# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def wire(message):
    """A rekey message reduced to its observable bytes, ciphertexts included."""
    return (
        message.group,
        message.epoch,
        tuple(message.updated),
        tuple(message.advanced),
        tuple(message.joined),
        tuple(message.departed),
        tuple(
            (
                ek.wrapping_id,
                ek.wrapping_version,
                ek.payload_id,
                ek.payload_version,
                ek.ciphertext,
            )
            for ek in message.encrypted_keys
        ),
    )


def assert_identical(obj_msg, flat_msg, context=""):
    a, b = wire(obj_msg), wire(flat_msg)
    assert a == b, f"kernel divergence {context}: {a[:2]} vs {b[:2]}"


class KernelPair:
    """Object and flat rekeyers fed the same operations in lock step."""

    def __init__(
        self,
        degree,
        seed,
        join_refresh="random",
        bulk_obj=False,
        bulk_flat=False,
        threads=None,
        arena=None,
    ):
        self.join_refresh = join_refresh
        self.obj_tree = KeyTree(
            degree=degree, keygen=KeyGenerator(seed), name="g/tree"
        )
        self.obj = LkhRekeyer(self.obj_tree, bulk=bulk_obj)
        self.flat_tree = FlatKeyTree(
            degree=degree, keygen=KeyGenerator(seed), name="g/tree"
        )
        self.flat = FlatRekeyer(
            self.flat_tree, bulk=bulk_flat, threads=threads, arena=arena
        )

    def batch(self, joins=(), departures=(), force_root=False, context=""):
        obj_msg = self.obj.rekey_batch(
            joins=joins,
            departures=departures,
            force_root=force_root,
            join_refresh=self.join_refresh,
        )
        flat_msg = self.flat.rekey_batch(
            joins=joins,
            departures=departures,
            force_root=force_root,
            join_refresh=self.join_refresh,
        )
        assert_identical(obj_msg, flat_msg, context)
        return obj_msg, flat_msg

    def check_state(self, context=""):
        assert self.obj_tree._seq_value == self.flat_tree._seq_value, context
        assert (
            self.obj_tree.keygen._counter == self.flat_tree.keygen._counter
        ), context
        self.flat_tree.validate()
        assert tree_to_dict(self.obj_tree) == self.flat_tree.to_dict(), context


# A churn program: each element is one batch as (joins, departures,
# force_root) where joins counts fresh members and departures indexes
# into the surviving population.
programs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=3),
        st.booleans(),
    ),
    min_size=1,
    max_size=20,
)


def run_program(pair, program):
    present = []
    counter = 0
    for step, (njoin, ndep, force_root) in enumerate(program):
        # Departures come from the pre-batch population; a member cannot
        # join and depart in the same batch.
        departures = []
        if pair.join_refresh != "owf":
            for _ in range(min(ndep, len(present))):
                departures.append(present.pop(0))
        joins = []
        for _ in range(njoin):
            counter += 1
            joins.append((f"m{counter}", None))
            present.append(f"m{counter}")
        if not joins and not departures and not force_root:
            continue
        pair.batch(joins, departures, force_root, context=f"step {step}")
    pair.check_state("final state")
    return present


# ----------------------------------------------------------------------
# hypothesis-driven traces
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    program=programs,
    degree=st.integers(min_value=2, max_value=5),
    deferred=st.booleans(),
    # Asymmetric bulk combos: each bulk engine is gated against a
    # non-bulk reference kernel, never only against the other bulk path.
    bulk=st.sampled_from([(False, False), (False, True), (True, False)]),
)
def test_hypothesis_churn_traces_are_byte_identical(
    program, degree, deferred, bulk
):
    with deferred_wraps(enabled=deferred):
        pair = KernelPair(
            degree=degree, seed=11, bulk_obj=bulk[0], bulk_flat=bulk[1]
        )
        run_program(pair, program)


@settings(max_examples=30, deadline=None)
@given(
    program=programs,
    degree=st.integers(min_value=2, max_value=5),
    deferred=st.booleans(),
    # Wrap-engine execution knobs: worker threads and the secret arena
    # must never move a byte relative to the object kernel's serial path.
    threads=st.sampled_from([1, 2, 4]),
    arena=st.booleans(),
)
def test_threaded_arena_traces_are_byte_identical(
    program, degree, deferred, threads, arena
):
    with deferred_wraps(enabled=deferred):
        pair = KernelPair(
            degree=degree,
            seed=17,
            bulk_flat=True,
            threads=threads,
            arena=arena,
        )
        run_program(pair, program)


@settings(max_examples=20, deadline=None)
@given(program=programs, deferred=st.booleans())
def test_owf_refresh_traces_are_byte_identical(program, deferred):
    with deferred_wraps(enabled=deferred):
        pair = KernelPair(degree=3, seed=5, join_refresh="owf")
        run_program(pair, program)


@settings(max_examples=20, deadline=None)
@given(program=programs)
def test_wrap_index_closures_are_equal(program):
    """Every surviving member resolves the same closure from either payload."""
    with deferred_wraps():
        pair = KernelPair(degree=3, seed=23)
        present = []
        counter = 0
        for njoin, ndep, force_root in program:
            departures = [
                present.pop(0) for _ in range(min(ndep, len(present)))
            ]
            joins = []
            for _ in range(njoin):
                counter += 1
                joins.append((f"m{counter}", None))
                present.append(f"m{counter}")
            if not joins and not departures and not force_root:
                continue
            held = {
                member: {
                    v.key.key_id: v.key.version
                    for v in pair.obj_tree.path_of(member)
                }
                for member in present[: len(present) // 2 + 1]
                if member in pair.obj_tree._member_leaf
            }
            obj_msg, flat_msg = pair.batch(joins, departures, force_root)
            obj_index = WrapIndex(obj_msg.encrypted_keys)
            flat_index = WrapIndex(flat_msg.encrypted_keys)
            for member, versions in held.items():
                obj_closure = [
                    (pos, ek.wrapping_id, ek.payload_id, ek.payload_version)
                    for pos, ek in obj_index.closure(versions)
                ]
                flat_closure = [
                    (pos, ek.wrapping_id, ek.payload_id, ek.payload_version)
                    for pos, ek in flat_index.closure(versions)
                ]
                assert obj_closure == flat_closure, member


# ----------------------------------------------------------------------
# pinned-seed mixes (stable regression anchor, no shrinking needed)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("deferred", [False, True])
def test_pinned_seed_mixed_traces(seed, deferred):
    rng = random.Random(seed)
    with deferred_wraps(enabled=deferred):
        pair = KernelPair(degree=rng.choice((2, 3, 4)), seed=seed)
        present = []
        counter = 0
        for step in range(40):
            op = rng.random()
            context = f"seed={seed} step={step}"
            if op < 0.3 or not present:
                counter += 1
                member = f"m{counter}"
                obj_msg = pair.obj.join(member)[1]
                flat_msg = pair.flat.join(member)[1]
                assert_identical(obj_msg, flat_msg, context)
                present.append(member)
            elif op < 0.45:
                victim = present.pop(rng.randrange(len(present)))
                assert_identical(
                    pair.obj.leave(victim), pair.flat.leave(victim), context
                )
            elif op < 0.9:
                njoin = rng.randrange(0, 5)
                ndep = rng.randrange(0, min(3, len(present)) + 1)
                departures = [
                    present.pop(rng.randrange(len(present)))
                    for _ in range(min(ndep, len(present)))
                ]
                joins = []
                for _ in range(njoin):
                    counter += 1
                    joins.append((f"m{counter}", None))
                    present.append(f"m{counter}")
                pair.batch(
                    joins,
                    departures,
                    force_root=rng.random() < 0.2,
                    context=context,
                )
            else:
                assert_identical(
                    pair.obj.refresh_root(),
                    pair.flat.refresh_root(),
                    context,
                )
            pair.check_state(context)


def test_per_receiver_decrypt_counts_match():
    """Receivers fed either kernel's payload learn the same keys, in the
    same quantity, every epoch."""
    with deferred_wraps():
        pair = KernelPair(degree=3, seed=42)
        rng = random.Random(42)
        obj_members = {}
        flat_members = {}
        present = []
        counter = 0
        for _ in range(8):
            joins = []
            for _ in range(rng.randrange(1, 5)):
                counter += 1
                member_id = f"m{counter}"
                joins.append((member_id, None))
                present.append(member_id)
            departures = []
            if len(present) > 4:
                for _ in range(rng.randrange(0, 2)):
                    victim = present.pop(rng.randrange(len(present)))
                    departures.append(victim)
                    obj_members.pop(victim, None)
                    flat_members.pop(victim, None)
            obj_msg, flat_msg = pair.batch(joins, departures)
            for member_id, _ in joins:
                leaf = pair.obj_tree._member_leaf[member_id]
                individual = leaf.key
                obj_members[member_id] = Member(member_id, individual)
                flat_members[member_id] = Member(member_id, individual)
            obj_index = WrapIndex(obj_msg.encrypted_keys)
            flat_index = WrapIndex(flat_msg.encrypted_keys)
            for member_id in present:
                learned_obj = obj_members[member_id].absorb(
                    obj_msg.encrypted_keys, index=obj_index
                )
                learned_flat = flat_members[member_id].absorb(
                    flat_msg.encrypted_keys, index=flat_index
                )
                assert len(learned_obj) == len(learned_flat), member_id
                assert [
                    (k.key_id, k.version, k.secret) for k in learned_obj
                ] == [
                    (k.key_id, k.version, k.secret) for k in learned_flat
                ], member_id
        # Everyone ends on the same (identical) group key.
        obj_dek = pair.obj_tree.root.key
        flat_dek = pair.flat_tree.root.key
        assert obj_dek.secret == flat_dek.secret
        for member_id in present:
            assert obj_members[member_id].holds(obj_dek.key_id, obj_dek.version)
            assert flat_members[member_id].holds(
                flat_dek.key_id, flat_dek.version
            )


# ----------------------------------------------------------------------
# sharded server: kernels x executor backends
# ----------------------------------------------------------------------


def _server_wires(server, rounds=4, churn=3):
    out = []
    present = []
    counter = 0
    for round_no in range(rounds):
        for _ in range(4):
            counter += 1
            member = f"m{counter}"
            server.join(member)
            present.append(member)
        if round_no:
            for _ in range(churn):
                server.leave(present.pop(0))
        out.append(wire_result(server.rekey()))
    return out


def wire_result(result):
    return tuple(
        (
            ek.wrapping_id,
            ek.wrapping_version,
            ek.payload_id,
            ek.payload_version,
            ek.ciphertext,
        )
        for ek in result.encrypted_keys
    )


@pytest.mark.parametrize("bulk", [False, True])
@pytest.mark.parametrize(
    "backend,workers", [("serial", 1), ("thread", 2), ("process", 2)]
)
def test_sharded_flat_kernel_matches_object_across_backends(
    backend, workers, bulk
):
    with deferred_wraps():
        obj_server = ShardedOneTreeServer(shards=4, degree=3, group="kx")
        flat_server = ShardedOneTreeServer(
            shards=4,
            degree=3,
            group="kx",
            backend=backend,
            workers=workers,
            tree_kernel="flat",
            bulk=bulk,
        )
        try:
            assert _server_wires(obj_server) == _server_wires(flat_server)
        finally:
            obj_server.close()
            flat_server.close()


@pytest.mark.parametrize("arena", [False, True])
@pytest.mark.parametrize(
    "backend,workers", [("serial", 1), ("thread", 2), ("process", 2)]
)
def test_sharded_process_thread_composition_parity(backend, workers, arena):
    """Worker processes x wrap threads x arena composes byte-identically.

    The whole-server thread budget is divided across executor lanes
    (``ShardedKeyTree``); whatever per-shard budget that leaves, the
    payload must match the unsharded-object reference exactly.
    """
    with deferred_wraps():
        obj_server = ShardedOneTreeServer(shards=4, degree=3, group="kx")
        flat_server = ShardedOneTreeServer(
            shards=4,
            degree=3,
            group="kx",
            backend=backend,
            workers=workers,
            tree_kernel="flat",
            bulk=True,
            threads=4,
            arena=arena,
        )
        try:
            assert _server_wires(obj_server) == _server_wires(flat_server)
        finally:
            obj_server.close()
            flat_server.close()
