"""Unit tests for packets and key-to-packet assignment."""

import pytest

from repro.transport.packets import (
    KeyPacket,
    order_breadth_first,
    order_depth_first,
    pack_indices,
)


class TestPackIndices:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            pack_indices([0, 1], 0)

    def test_exact_fill(self):
        packets = pack_indices(range(6), 3)
        assert [p.key_indices for p in packets] == [(0, 1, 2), (3, 4, 5)]

    def test_partial_tail(self):
        packets = pack_indices(range(7), 3)
        assert packets[-1].key_indices == (6,)

    def test_seqnos_consecutive_from_start(self):
        packets = pack_indices(range(9), 2, start_seqno=10)
        assert [p.seqno for p in packets] == [10, 11, 12, 13, 14]

    def test_empty_input(self):
        assert pack_indices([], 4) == []

    def test_block_tag_propagates(self):
        packets = pack_indices(range(4), 2, block=7)
        assert all(p.block == 7 for p in packets)

    def test_key_count(self):
        packet = KeyPacket(0, (1, 2, 3))
        assert packet.key_count == 3


class TestOrdering:
    def test_breadth_first_sorts_by_audience_desc(self):
        audiences = {0: {"a"}, 1: {"a", "b", "c"}, 2: {"a", "b"}}
        assert order_breadth_first([0, 1, 2], audiences) == [1, 2, 0]

    def test_breadth_first_ties_break_by_index(self):
        audiences = {0: {"a"}, 1: {"b"}, 2: {"c"}}
        assert order_breadth_first([2, 0, 1], audiences) == [0, 1, 2]

    def test_depth_first_preserves_order(self):
        assert order_depth_first([5, 3, 8]) == [5, 3, 8]
