"""Shared fixtures for the test suite."""

import pytest

from repro.crypto.material import KeyGenerator
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.tree import KeyTree
from repro.server.onetree import OneTreeServer
from repro.testing import ConformanceHarness


@pytest.fixture
def keygen():
    """A deterministic key generator (fresh per test)."""
    return KeyGenerator(seed=1234)


@pytest.fixture
def tree(keygen):
    """An empty degree-4 key tree."""
    return KeyTree(degree=4, keygen=keygen, name="t")


@pytest.fixture
def rekeyer(tree):
    """A rekeyer bound to the ``tree`` fixture."""
    return LkhRekeyer(tree)


@pytest.fixture
def harness():
    """A conformance harness around a fresh one-keytree server.

    Tests that need a server already under full security audit can drive
    this instead of wiring members by hand; any invariant breach raises
    ``repro.testing.InvariantViolation`` at the offending rekey point.
    """
    return ConformanceHarness(OneTreeServer(degree=4, keygen=KeyGenerator(seed=99)))


@pytest.fixture
def make_harness():
    """Factory fixture: build an audited harness around any server."""

    def build(server, **kwargs):
        return ConformanceHarness(server, **kwargs)

    return build
