"""Shared fixtures for the test suite."""

import pytest

from repro.crypto.material import KeyGenerator
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.tree import KeyTree


@pytest.fixture
def keygen():
    """A deterministic key generator (fresh per test)."""
    return KeyGenerator(seed=1234)


@pytest.fixture
def tree(keygen):
    """An empty degree-4 key tree."""
    return KeyTree(degree=4, keygen=keygen, name="t")


@pytest.fixture
def rekeyer(tree):
    """A rekeyer bound to the ``tree`` fixture."""
    return LkhRekeyer(tree)
