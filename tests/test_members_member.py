"""Unit tests for the receiver-side key state machine."""

import pytest

from repro.crypto.cipher import AuthenticationError, encrypt
from repro.crypto.material import KeyGenerator
from repro.crypto.wrap import wrap_key
from repro.members.member import Member


@pytest.fixture
def gen():
    return KeyGenerator(21)


@pytest.fixture
def member(gen):
    return Member("alice", gen.generate("member:alice"))


class TestKeyState:
    def test_starts_with_individual_key_only(self, member):
        assert member.key_count() == 1
        assert member.holds("member:alice")
        assert member.holds("member:alice", 0)

    def test_key_lookup_errors(self, member):
        with pytest.raises(KeyError):
            member.key("unknown")

    def test_install_and_held_versions(self, member, gen):
        member.install(gen.generate("aux", version=2))
        assert member.held_versions() == {"member:alice": 0, "aux": 2}

    def test_install_refuses_downgrade(self, member, gen):
        newer = gen.generate("aux", version=3)
        older = gen.generate("aux", version=1)
        member.install(newer)
        member.install(older)
        assert member.key("aux").version == 3

    def test_drop_keys(self, member, gen):
        member.install(gen.generate("aux"))
        member.drop_keys(["aux", "never-held"])
        assert not member.holds("aux")


class TestAbsorb:
    def test_absorbs_reachable_chain_regardless_of_order(self, member, gen):
        """parent wrapped under aux, aux wrapped under the individual key —
        presented parent-first, requiring the fixed-point pass."""
        aux = gen.generate("aux", version=1)
        parent = gen.generate("parent", version=1)
        chain = [
            wrap_key(aux, parent),
            wrap_key(member.key("member:alice"), aux),
        ]
        learned = member.absorb(chain)
        assert {k.key_id for k in learned} == {"aux", "parent"}
        assert member.holds("parent", 1)

    def test_ignores_wraps_for_missing_keys(self, member, gen):
        other = gen.generate("other")
        payload = gen.generate("secret")
        assert member.absorb([wrap_key(other, payload)]) == []
        assert not member.holds("secret")

    def test_ignores_wraps_under_stale_version(self, member, gen):
        aux_v0 = gen.generate("aux", version=0)
        aux_v2 = gen.generate("aux", version=2)
        member.install(aux_v0)
        payload = gen.generate("secret", version=1)
        assert member.absorb([wrap_key(aux_v2, payload)]) == []

    def test_skips_already_known_payload_versions(self, member, gen):
        aux = gen.generate("aux", version=5)
        member.install(aux)
        stale_payload = gen.generate("aux", version=4)
        wrap = wrap_key(member.key("member:alice"), stale_payload)
        assert member.absorb([wrap]) == []
        assert member.key("aux").version == 5

    def test_useful_subset_does_not_mutate(self, member, gen):
        aux = gen.generate("aux", version=1)
        wraps = [wrap_key(member.key("member:alice"), aux)]
        useful = member.useful_subset(wraps)
        assert len(useful) == 1
        assert not member.holds("aux")

    def test_useful_subset_follows_chains(self, member, gen):
        aux = gen.generate("aux", version=1)
        parent = gen.generate("parent", version=1)
        wraps = [
            wrap_key(aux, parent),
            wrap_key(member.key("member:alice"), aux),
        ]
        assert len(member.useful_subset(wraps)) == 2


class TestDataPlane:
    def test_decrypts_traffic_with_group_key(self, member, gen):
        dek = gen.generate("group/dek", version=7)
        member.install(dek)
        blob = encrypt(dek.secret, b"n", b"payload")
        assert member.decrypt_data("group/dek", b"n", blob) == b"payload"

    def test_stale_group_key_fails_authentication(self, member, gen):
        old = gen.generate("group/dek", version=1)
        new = gen.rekey(old)
        member.install(old)
        blob = encrypt(new.secret, b"n", b"payload")
        with pytest.raises(AuthenticationError):
            member.decrypt_data("group/dek", b"n", blob)

    def test_missing_group_key_raises_key_error(self, member):
        with pytest.raises(KeyError):
            member.decrypt_data("group/dek", b"n", b"\x00" * 32)
