"""Unit tests for the LKH rekeying engine, including the paper's examples."""

import pytest

from repro.crypto.material import KeyGenerator
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.tree import KeyTree
from repro.members.member import Member

from tests.helpers import populate


def make_member(tree, member_id):
    """A Member primed with its individual key (registration channel)."""
    return Member(member_id, tree.leaf_of(member_id).key)


class TestIndividualJoin:
    def test_join_refreshes_whole_path(self, rekeyer):
        populate(rekeyer, 8)
        tree = rekeyer.tree
        before = {n.node_id: n.key.version for n in tree.iter_nodes() if not n.is_leaf}
        leaf, message = rekeyer.join("newbie")
        for node in leaf.path_to_root()[1:]:
            if node.node_id in before:
                assert node.key.version == before[node.node_id] + 1

    def test_joiner_can_bootstrap_entire_path(self, rekeyer):
        populate(rekeyer, 8)
        leaf, message = rekeyer.join("newbie")
        member = Member("newbie", leaf.key)
        member.process_rekey(message)
        root = rekeyer.tree.root.key
        assert member.holds(root.key_id, root.version)

    def test_existing_member_follows_old_key_wraps(self, rekeyer):
        populate(rekeyer, 8)
        tree = rekeyer.tree
        veteran = make_member(tree, "m0")
        # Give the veteran its current path keys directly (it was present
        # when they were distributed).
        for node in tree.path_of("m0"):
            veteran.install(node.key)
        __, message = rekeyer.join("newbie")
        veteran.process_rekey(message)
        root = tree.root.key
        assert veteran.holds(root.key_id, root.version)

    def test_joiner_cannot_recover_previous_root(self, rekeyer):
        populate(rekeyer, 8)
        old_root = rekeyer.tree.root.key
        leaf, message = rekeyer.join("newbie")
        member = Member("newbie", leaf.key)
        member.process_rekey(message)
        assert not member.holds(old_root.key_id, old_root.version)

    def test_paper_example_join_cost(self, keygen):
        """The U9 example: 8-member full binary... the paper's tree is
        degree-3-ish; we verify the structural rule instead: a join costs
        2 keys per refreshed path node when no split occurs (one wrap
        under the old key, one under the joiner's key)."""
        tree = KeyTree(degree=3, keygen=keygen)
        rekeyer = LkhRekeyer(tree)
        populate(rekeyer, 8)  # room left under degree-3 internal nodes
        before_nodes = {n.node_id for n in tree.iter_nodes()}
        leaf, message = rekeyer.join("u9")
        created = {
            n.node_id for n in leaf.path_to_root()[1:]
        } - before_nodes
        if not created:  # pure attachment, the paper's scenario
            path_keys = len(leaf.path_to_root()) - 1
            assert message.cost == 2 * path_keys


class TestIndividualLeave:
    def test_paper_example_departure_cost(self, keygen):
        """Fig. 1's U4 departure: 9 members, degree 3, full tree.

        K'1-9 is encrypted under K123, K'456 and K789 (3 wraps) and K'456
        under K5 and K6 (2 wraps): five encrypted keys total.
        """
        tree = KeyTree(degree=3, keygen=keygen)
        rekeyer = LkhRekeyer(tree)
        populate(rekeyer, 9, prefix="u")
        assert tree.height() == 2
        message = rekeyer.leave("u3")  # any mid-tree member
        assert message.cost == 5

    def test_departed_member_excluded_from_wraps(self, rekeyer):
        populate(rekeyer, 16)
        tree = rekeyer.tree
        evicted = make_member(tree, "m4")
        for node in tree.path_of("m4"):
            evicted.install(node.key)
        message = rekeyer.leave("m4")
        evicted.process_rekey(message)
        root = tree.root.key
        assert not evicted.holds(root.key_id, root.version)

    def test_survivors_can_follow(self, rekeyer):
        populate(rekeyer, 16)
        tree = rekeyer.tree
        survivor = make_member(tree, "m10")
        for node in tree.path_of("m10"):
            survivor.install(node.key)
        message = rekeyer.leave("m4")
        survivor.process_rekey(message)
        root = tree.root.key
        assert survivor.holds(root.key_id, root.version)

    def test_leave_shrinks_tree(self, rekeyer):
        populate(rekeyer, 10)
        rekeyer.leave("m0")
        assert rekeyer.tree.size == 9
        rekeyer.tree.validate()


class TestBatch:
    def test_batch_join_only(self, rekeyer):
        message = rekeyer.rekey_batch(joins=[(f"m{i}", None) for i in range(16)])
        assert rekeyer.tree.size == 16
        assert sorted(message.joined) == sorted(f"m{i}" for i in range(16))
        assert message.cost > 0

    def test_batch_departure_only(self, rekeyer):
        populate(rekeyer, 16)
        message = rekeyer.rekey_batch(departures=["m1", "m2", "m3"])
        assert rekeyer.tree.size == 13
        assert message.departed == ["m1", "m2", "m3"]

    def test_empty_batch_is_free(self, rekeyer):
        populate(rekeyer, 8)
        message = rekeyer.rekey_batch()
        assert message.cost == 0
        assert message.updated == []

    def test_force_root_refreshes_root_only(self, rekeyer):
        populate(rekeyer, 16)
        root_version = rekeyer.tree.root.key.version
        message = rekeyer.rekey_batch(force_root=True)
        assert rekeyer.tree.root.key.version == root_version + 1
        # Root wrapped once per child.
        assert message.cost == len(rekeyer.tree.root.children)

    def test_batching_saves_over_sequential_departures(self, keygen):
        """Shared path segments are refreshed once per batch (Section
        2.1.1's motivation)."""
        batch_tree = KeyTree(degree=4, keygen=KeyGenerator(1))
        batch_rekeyer = LkhRekeyer(batch_tree)
        populate(batch_rekeyer, 64)
        victims = [f"m{i}" for i in range(0, 16)]
        batched = batch_rekeyer.rekey_batch(departures=victims).cost

        seq_tree = KeyTree(degree=4, keygen=KeyGenerator(1))
        seq_rekeyer = LkhRekeyer(seq_tree)
        populate(seq_rekeyer, 64)
        sequential = sum(seq_rekeyer.leave(v).cost for v in victims)
        assert batched < sequential

    def test_batch_join_and_leave_share_marked_nodes(self, rekeyer):
        populate(rekeyer, 64)
        combined = rekeyer.rekey_batch(
            joins=[("j0", None)], departures=["m0"]
        ).cost
        # Cost of a combined batch is at most the sum of individual ops.
        tree2 = KeyTree(degree=4, keygen=KeyGenerator(1234))
        r2 = LkhRekeyer(tree2)
        populate(r2, 64)
        separate = r2.leave("m0").cost + r2.join("j0")[1].cost
        assert combined <= separate

    def test_all_members_recover_group_key_after_batch(self, rekeyer):
        populate(rekeyer, 32)
        tree = rekeyer.tree
        members = {}
        for m in tree.members():
            member = make_member(tree, m)
            for node in tree.path_of(m):
                member.install(node.key)
            members[m] = member
        message = rekeyer.rekey_batch(
            joins=[(f"j{i}", None) for i in range(4)],
            departures=["m0", "m5", "m9"],
        )
        for m in ("m0", "m5", "m9"):
            evicted = members.pop(m)
            evicted.process_rekey(message)
            root = tree.root.key
            assert not evicted.holds(root.key_id, root.version)
        for i in range(4):
            members[f"j{i}"] = make_member(tree, f"j{i}")
        for member in members.values():
            member.process_rekey(message)
            root = tree.root.key
            assert member.holds(root.key_id, root.version), member.member_id

    def test_epochs_increase(self, rekeyer):
        first = rekeyer.rekey_batch(joins=[("a", None)])
        second = rekeyer.rekey_batch(joins=[("b", None)])
        assert second.epoch > first.epoch

    def test_interest_of_filters_by_held_keys(self, rekeyer):
        populate(rekeyer, 16)
        tree = rekeyer.tree
        held = {n.key.key_id: n.key.version for n in tree.path_of("m0")}
        message = rekeyer.rekey_batch(departures=["m8"])
        interesting = message.interest_of(held)
        assert all(ek.wrapping_id in held for ek in interesting)
