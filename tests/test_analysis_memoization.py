"""Memoized analytic kernels: hits accrue, and caching never changes values.

The figure sweeps call the same closed-form kernels (Ne(N, L) batch cost,
WKA-BKR E[M], FEC block-loss sums, and their combinatoric helpers) with
heavily repeated arguments, so each carries an ``lru_cache``.  These tests
pin both halves of that bargain: the caches actually get hit during a
real sweep, and a cached call returns exactly what the uncached kernel
(``.__wrapped__``) returns.
"""

import pytest

from repro.analysis.batchcost import expected_batch_cost, expected_batch_cost_full
from repro.analysis.combinatorics import log_choose, subtree_hit_probability
from repro.analysis.fec import FecParameters, _log_binom_cdf, expected_block_cost
from repro.analysis.wka import _mixture_key, expected_transmissions
from repro.experiments.fec_gain import fec_gain_series
from repro.experiments.fig4 import fig4_series
from repro.experiments.fig6 import fig6_series

ALL_KERNELS = [
    expected_batch_cost,
    expected_batch_cost_full,
    log_choose,
    subtree_hit_probability,
    expected_transmissions,
    expected_block_cost,
    _log_binom_cdf,
]

MIXTURE = [(0.25, 0.2), (0.01, 0.8)]


def clear_all():
    for kernel in ALL_KERNELS:
        kernel.cache_clear()


class TestSweepsHitTheCaches:
    def test_fig4_sweep_hits_batch_cost_caches(self):
        clear_all()
        fig4_series(alpha_values=[0.1, 0.2, 0.3])
        assert expected_batch_cost.cache_info().hits > 0
        assert log_choose.cache_info().hits > 0

    def test_fig6_sweep_hits_transmission_cache(self):
        clear_all()
        fig6_series(alpha_values=[0.2, 0.4], group_size=1024, departures=16)
        assert expected_transmissions.cache_info().hits > 0
        # The population is fixed across alphas, so the per-subtree hit
        # probabilities repeat from the second sweep point on.
        assert subtree_hit_probability.cache_info().hits > 0

    def test_fec_sweep_hits_block_cost_caches(self):
        clear_all()
        fec_gain_series(alpha_values=[0.2, 0.4], group_size=1024, departures=16)
        # Full-size blocks across the schemes share (sent, rate, deficit)
        # binomial tails even on a cold sweep.
        assert _log_binom_cdf.cache_info().hits > 0
        cold = expected_block_cost.cache_info()
        assert cold.misses > 0
        fec_gain_series(alpha_values=[0.2, 0.4], group_size=1024, departures=16)
        warm = expected_block_cost.cache_info()
        assert warm.misses == cold.misses
        assert warm.hits > cold.hits

    def test_repeated_sweep_is_all_hits(self):
        fig4_series(alpha_values=[0.15])
        before = expected_batch_cost.cache_info()
        fig4_series(alpha_values=[0.15])
        after = expected_batch_cost.cache_info()
        assert after.misses == before.misses
        assert after.hits > before.hits


class TestCachedEqualsUncached:
    """Byte-for-byte equality between the cached and bypassed kernels."""

    @pytest.mark.parametrize("n,k", [(10, 3), (1024.0, 17.0), (5, 0)])
    def test_log_choose(self, n, k):
        assert log_choose(n, k) == log_choose.__wrapped__(n, k)

    @pytest.mark.parametrize(
        "group,departures,subtree",
        [(1024.0, 16.0, 64.0), (4096.0, 100.0, 4.0)],
    )
    def test_subtree_hit_probability(self, group, departures, subtree):
        assert subtree_hit_probability(
            group, departures, subtree
        ) == subtree_hit_probability.__wrapped__(group, departures, subtree)

    @pytest.mark.parametrize("n,l", [(1024.0, 16.0), (8192.0, 100.0)])
    def test_expected_batch_cost(self, n, l):
        assert expected_batch_cost(n, l) == expected_batch_cost.__wrapped__(n, l)
        assert expected_batch_cost_full(
            n, l
        ) == expected_batch_cost_full.__wrapped__(n, l)

    @pytest.mark.parametrize("receivers", [1.0, 37.5, 500.0])
    def test_expected_transmissions(self, receivers):
        cached = expected_transmissions(receivers, MIXTURE)
        direct = expected_transmissions.__wrapped__(
            receivers, _mixture_key(MIXTURE)
        )
        assert cached == direct

    def test_expected_block_cost(self):
        params = FecParameters()
        cached = expected_block_cost(32, 200.0, MIXTURE, params)
        direct = expected_block_cost.__wrapped__(
            32, 200.0, _mixture_key(MIXTURE), params
        )
        assert cached == direct

    def test_log_binom_cdf(self):
        assert _log_binom_cdf(40, 0.75, 12) == _log_binom_cdf.__wrapped__(
            40, 0.75, 12
        )

    def test_mixture_key_canonicalizes_lists_and_tuples(self):
        as_list = expected_transmissions(64.0, [(0.25, 0.2), (0.01, 0.8)])
        as_tuple = expected_transmissions(64.0, ((0.25, 0.2), (0.01, 0.8)))
        assert as_list == as_tuple

    def test_cache_bypass_on_whole_series(self):
        """A full fig4 sweep computed twice — once against warm caches,
        once cold — is identical (memoization is invisible)."""
        warm = fig4_series(alpha_values=[0.1, 0.3, 0.5])
        clear_all()
        cold = fig4_series(alpha_values=[0.1, 0.3, 0.5])
        assert cold.columns == warm.columns
