"""Differential conformance for snapshot/restore.

A restored server must be *behaviourally identical* to the live one it
was dumped from: same future epochs, same batch costs, same group-key
material — and it must keep satisfying every security invariant when the
second half of a scenario is replayed against it.  Members who absorbed
the live server's broadcasts must keep decrypting after the handover,
which is exactly the operational story (server failover mid-session).
"""

import json

import pytest

from repro.server.snapshot import restore_server, snapshot_server
from repro.testing import (
    SCHEME_FACTORIES,
    ConformanceHarness,
    Scenario,
    default_join_attributes,
)
from repro.testing.conformance import S_PERIOD

PREFIX = Scenario.parse(
    f"+a +b +c +d +e . -b . t+{S_PERIOD:g} +f .", name="prefix"
)
SUFFIX = Scenario.parse("+g -a . t+60 -c +h . !*", name="suffix")

SNAPSHOT_SCHEMES = [
    "one-keytree",
    "one-keytree-owf",
    "sharded",
    "qt",
    "tt",
    "loss-homogenized",
    "one-keytree-flat",
    "sharded-flat",
]


def run_prefix(spec):
    harness = ConformanceHarness(spec.factory())
    PREFIX.run(
        harness,
        attribute_filter=spec.attributes,
        join_defaults=default_join_attributes,
    )
    return harness


@pytest.mark.parametrize("name", SNAPSHOT_SCHEMES)
def test_restored_server_is_behaviourally_identical(name):
    spec = SCHEME_FACTORIES[name]
    live = run_prefix(spec)
    state = snapshot_server(live.server)
    # The dump must be pure JSON (the documented at-rest format).
    state = json.loads(json.dumps(state))
    restored_server = restore_server(state)

    # Graft the harness onto the restored server: same members, same
    # shadow, same history — only the server object is swapped.
    restored = live
    restored.server = restored_server

    SUFFIX.run(
        restored,
        attribute_filter=spec.attributes,
        join_defaults=default_join_attributes,
    )


@pytest.mark.parametrize("name", SNAPSHOT_SCHEMES)
def test_live_and_restored_emit_identical_batches(name):
    spec = SCHEME_FACTORIES[name]
    live = run_prefix(spec)
    state = snapshot_server(live.server)
    twin = restore_server(json.loads(json.dumps(state)))

    attrs = {
        k: v
        for k, v in default_join_attributes("z1").items()
        if k in spec.attributes
    }
    for server in (live.server, twin):
        server.join("z1", at_time=1000.0, **attrs)
        server.leave("d", at_time=1000.0)
    live_result = live.server.rekey(now=1000.0)
    twin_result = twin.rekey(now=1000.0)

    assert twin_result.epoch == live_result.epoch
    assert twin_result.cost == live_result.cost
    assert twin_result.breakdown == live_result.breakdown
    assert sorted(twin_result.joined) == sorted(live_result.joined)
    assert sorted(twin_result.departed) == sorted(live_result.departed)
    assert twin_result.migrated == live_result.migrated
    # Same future key material, not just same shapes.
    assert twin.group_key().secret == live.server.group_key().secret
    live_wire = {
        (ek.wrapping_id, ek.wrapping_version, ek.payload_id, ek.payload_version)
        for ek in live_result.encrypted_keys
    }
    twin_wire = {
        (ek.wrapping_id, ek.wrapping_version, ek.payload_id, ek.payload_version)
        for ek in twin_result.encrypted_keys
    }
    assert twin_wire == live_wire


#: (scheme, kernel to restore into) — dumps are kernel-neutral, so a
#: snapshot taken with one kernel must restore into the other and keep
#: emitting byte-identical payloads from the next rekey onward.
CROSS_KERNEL = [
    ("one-keytree", "flat"),
    ("one-keytree-flat", "object"),
    ("sharded", "flat"),
    ("sharded-flat", "object"),
]


def _wire(result):
    return [
        (
            ek.wrapping_id,
            ek.wrapping_version,
            ek.payload_id,
            ek.payload_version,
            ek.ciphertext,
        )
        for ek in result.encrypted_keys
    ]


@pytest.mark.parametrize("name,other_kernel", CROSS_KERNEL)
def test_cross_kernel_restore_emits_identical_payloads(name, other_kernel):
    spec = SCHEME_FACTORIES[name]
    live = run_prefix(spec)
    state = json.loads(json.dumps(snapshot_server(live.server)))
    assert state["tree_kernel"] != other_kernel
    state["tree_kernel"] = other_kernel
    twin = restore_server(state)

    # Continue churning both servers in lock step: every subsequent batch
    # must match byte for byte (order and ciphertexts included).
    for step in range(4):
        now = 1000.0 + 10.0 * step
        for server in (live.server, twin):
            server.join(f"x{step}", at_time=now)
            if step == 1:
                server.leave("c", at_time=now)
        live_result = live.server.rekey(now=now)
        twin_result = twin.rekey(now=now)
        assert twin_result.epoch == live_result.epoch
        assert _wire(twin_result) == _wire(live_result)
    assert twin.group_key().secret == live.server.group_key().secret
    if hasattr(twin, "close"):
        twin.close()


def test_snapshot_round_trip_preserves_resync():
    spec = SCHEME_FACTORIES["tt"]
    live = run_prefix(spec)
    twin = restore_server(json.loads(json.dumps(snapshot_server(live.server))))
    restored = live
    restored.server = twin
    restored.check_all_resyncs()
