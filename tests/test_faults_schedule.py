"""Fault schedules: windows, deterministic coverage, canned scenarios."""

import pytest

from repro.faults.schedule import (
    STANDARD_SCHEDULES,
    Blackout,
    ChurnStorm,
    DeliveryJitter,
    DuplicateDelivery,
    FaultSchedule,
    LossBurst,
    ServerCrash,
)


class TestWindows:
    def test_active_half_open_interval(self):
        burst = LossBurst(start=10.0, duration=5.0)
        assert not burst.active(9.999)
        assert burst.active(10.0)
        assert burst.active(14.999)
        assert not burst.active(15.0)

    def test_explicit_receivers_override_fraction(self):
        blackout = Blackout(
            start=0.0, duration=1.0, receivers=frozenset({"a"}), fraction=1.0
        )
        assert blackout.covers("a")
        assert not blackout.covers("b")

    def test_fraction_coverage_is_stable_and_proportional(self):
        burst = LossBurst(start=0.0, duration=1.0, fraction=0.4)
        ids = [f"m{i}" for i in range(2000)]
        covered = {rid for rid in ids if burst.covers(rid)}
        # Deterministic: the same ids are always picked.
        assert covered == {rid for rid in ids if burst.covers(rid)}
        assert 0.3 < len(covered) / len(ids) < 0.5
        assert not any(
            Blackout(start=0.0, duration=1.0, fraction=0.0).covers(r) for r in ids
        )
        assert all(
            Blackout(start=0.0, duration=1.0, fraction=1.0).covers(r) for r in ids
        )


class TestFaultSchedule:
    def test_of_classifies_and_sorts(self):
        schedule = FaultSchedule.of(
            [
                ServerCrash(at_time=900.0),
                ServerCrash(at_time=300.0),
                ChurnStorm(at_time=500.0, joins=3, leaves=2),
                LossBurst(start=0.0, duration=10.0),
                Blackout(start=0.0, duration=10.0),
                DuplicateDelivery(start=0.0, duration=10.0),
                DeliveryJitter(start=0.0, duration=10.0),
            ]
        )
        assert [c.at_time for c in schedule.crashes] == [300.0, 900.0]
        assert len(schedule.bursts) == 1
        assert len(schedule.storms) == 1

    def test_of_rejects_unknown_fault(self):
        with pytest.raises(TypeError):
            FaultSchedule.of(["not-a-fault"])

    def test_channel_queries(self):
        schedule = FaultSchedule.of(
            [
                LossBurst(start=10.0, duration=5.0, fraction=1.0),
                Blackout(start=20.0, duration=5.0, receivers=frozenset({"x"})),
                DuplicateDelivery(start=0.0, duration=100.0, probability=0.3),
                DeliveryJitter(start=50.0, duration=10.0),
            ]
        )
        assert schedule.burst_for("m1", 12.0) is not None
        assert schedule.burst_for("m1", 16.0) is None
        assert schedule.blacked_out("x", 22.0)
        assert not schedule.blacked_out("y", 22.0)
        assert schedule.duplicate_probability(1.0) == 0.3
        assert schedule.duplicate_probability(200.0) == 0.0
        assert schedule.jitter_active(55.0)
        assert not schedule.jitter_active(45.0)

    def test_crashes_in_window(self):
        schedule = FaultSchedule.of(
            [ServerCrash(at_time=100.0), ServerCrash(at_time=200.0)]
        )
        assert [c.at_time for c in schedule.crashes_in(0.0, 150.0)] == [100.0]
        assert [c.at_time for c in schedule.crashes_in(100.0, 250.0)] == [200.0]

    def test_randomized_is_seed_deterministic(self):
        a = FaultSchedule.randomized(42, 1800.0)
        b = FaultSchedule.randomized(42, 1800.0)
        c = FaultSchedule.randomized(43, 1800.0)
        assert a == b
        assert a != c
        # Every fault type is represented.
        assert a.bursts and a.blackouts and a.duplicates
        assert a.jitters and a.crashes and a.storms

    def test_named_schedules_cover_the_standard_set(self):
        for name in STANDARD_SCHEDULES:
            schedule = FaultSchedule.named(name, 1800.0)
            assert schedule.name == name
        with pytest.raises(ValueError):
            FaultSchedule.named("nonsense", 1800.0)
