"""Unit tests for the flat-array key-tree kernel itself.

The heavyweight correctness gate is the differential battery
(``test_keytree_flat_differential.py``); these tests cover the flat
kernel's own surface — structure API, dump interchange with the object
kernel, slot recycling, and the kernel-selection plumbing.
"""

import pytest

from repro.crypto.material import KeyGenerator
from repro.keytree.flat import FlatKeyTree, FlatRekeyer
from repro.keytree.serialize import (
    TREE_KERNELS,
    kernel_tree_from_dict,
    make_kernel_rekeyer,
    make_kernel_tree,
    tree_from_dict,
    tree_to_dict,
)
from repro.keytree.sharded import ShardedKeyTree
from repro.keytree.tree import KeyTree
from repro.server.onetree import OneTreeServer


def build_flat(count=25, degree=3, seed=9):
    tree = FlatKeyTree(degree=degree, keygen=KeyGenerator(seed), name="t")
    rekeyer = FlatRekeyer(tree)
    rekeyer.rekey_batch(joins=[(f"m{i}", None) for i in range(count)])
    return tree, rekeyer


class TestFlatTreeStructure:
    def test_bulk_join_builds_a_valid_balanced_tree(self):
        tree, _ = build_flat(count=64, degree=4)
        tree.validate()
        assert tree.size == 64
        assert sorted(tree.members()) == sorted(f"m{i}" for i in range(64))
        assert tree.is_balanced(slack=1)

    def test_node_views_walk_like_object_nodes(self):
        tree, _ = build_flat(count=10, degree=2)
        root = tree.root
        assert root.depth == 0
        assert not root.is_leaf
        path = tree.path_of("m3")  # leaf first, root last
        assert path[0].is_leaf
        assert path[0].member_id == "m3"
        assert path[-1].node_id == root.node_id
        assert [v.depth for v in reversed(path)] == list(range(len(path)))
        assert all(child.parent.node_id == root.node_id for child in root.children)

    def test_member_errors(self):
        tree, rekeyer = build_flat(count=4)
        with pytest.raises(KeyError):
            tree.remove_member("nope")
        with pytest.raises(ValueError):
            rekeyer.rekey_batch(joins=[("m0", None)])  # duplicate member

    def test_departure_recycles_slots(self):
        tree, rekeyer = build_flat(count=16, degree=2)
        assert not tree._free
        rekeyer.rekey_batch(departures=["m5"])
        tree.validate()
        assert tree._free  # leaf + spliced parent went to the freelist
        free_before = len(tree._free)
        rekeyer.rekey_batch(joins=[("fresh", None)])
        tree.validate()
        assert len(tree._free) < free_before  # reused, not grown


class TestDumpInterchange:
    def test_flat_dump_restores_into_object_tree(self):
        tree, _ = build_flat(count=12)
        restored = tree_from_dict(tree.to_dict(), keygen=KeyGenerator(9))
        restored.validate()
        assert sorted(restored.members()) == sorted(tree.members())
        assert restored.root.key.secret == tree.root.key.secret

    def test_object_dump_restores_into_flat_tree(self):
        obj = KeyTree(degree=3, keygen=KeyGenerator(4), name="t")
        for i in range(12):
            obj.add_member(f"m{i}")
        flat = FlatKeyTree.from_dict(tree_to_dict(obj), keygen=KeyGenerator(4))
        flat.validate()
        assert sorted(flat.members()) == sorted(obj.members())
        assert flat.to_dict() == tree_to_dict(obj)


class TestKernelSelection:
    def test_kernel_discriminators(self):
        assert KeyTree.kernel == "object"
        assert FlatKeyTree.kernel == "flat"
        assert set(TREE_KERNELS) == {"object", "flat"}

    def test_make_kernel_tree_dispatches(self):
        for kernel, cls in (("object", KeyTree), ("flat", FlatKeyTree)):
            tree = make_kernel_tree(
                kernel, degree=3, keygen=KeyGenerator(1), name="t"
            )
            assert isinstance(tree, cls)
            rekeyer = make_kernel_rekeyer(tree)
            rekeyer.rekey_batch(joins=[("a", None), ("b", None)])
            assert tree.size == 2
        with pytest.raises(ValueError):
            make_kernel_tree("simd", degree=3, name="t")
        with pytest.raises(ValueError):
            kernel_tree_from_dict({}, kernel="simd")

    def test_server_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            OneTreeServer(tree_kernel="simd")
        with pytest.raises(ValueError):
            ShardedKeyTree(shards=2, kernel="simd")

    def test_one_tree_server_flat_kernel_serves_group_key(self):
        server = OneTreeServer(degree=3, tree_kernel="flat")
        for i in range(9):
            server.join(f"m{i}")
        result = server.rekey()
        assert result.cost > 0
        dek = server.group_key()
        assert server.tree.kernel == "flat"
        assert dek.secret == server.tree.root.key.secret
        held = server._current_keys_of("m4")
        assert held[-1].key_id == dek.key_id
