"""Unit tests for the Section 4.3 multi-tree models (Figs. 6 and 7)."""

import pytest

from repro.analysis.losshomog import (
    TreeSpec,
    loss_homogenized_cost,
    multi_tree_cost,
    one_keytree_cost,
    random_partition_cost,
)
from repro.analysis.misplacement import misplaced_partition_specs

N, L, D = 65_536, 256, 4
PH, PL = 0.20, 0.02


def mixture(alpha):
    pairs = []
    if alpha > 0:
        pairs.append((PH, alpha))
    if alpha < 1:
        pairs.append((PL, 1 - alpha))
    return tuple(pairs)


class TestTreeSpec:
    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            TreeSpec(size=-1, mixture=((0.1, 1.0),))

    def test_homogeneous_helper(self):
        spec = TreeSpec.homogeneous(100, 0.2)
        assert spec.mixture == ((0.2, 1.0),)


class TestFig6Shape:
    def test_endpoints_coincide(self):
        """At alpha = 0 and 1 the homogenized scheme *is* the one-keytree
        scheme (Section 4.3.1(a))."""
        for alpha in (0.0, 1.0):
            assert loss_homogenized_cost(N, L, mixture(alpha), D) == pytest.approx(
                one_keytree_cost(N, L, mixture(alpha), D)
            )

    def test_homogenized_wins_in_the_middle(self):
        for alpha in (0.1, 0.2, 0.3, 0.5, 0.7):
            assert loss_homogenized_cost(N, L, mixture(alpha), D) < one_keytree_cost(
                N, L, mixture(alpha), D
            )

    def test_random_partition_slightly_worse(self):
        """Splitting without homogenizing does not help (Fig. 6)."""
        for alpha in (0.2, 0.5):
            one = one_keytree_cost(N, L, mixture(alpha), D)
            rnd = random_partition_cost(N, L, mixture(alpha), D, tree_count=2)
            assert rnd > one
            assert rnd < one * 1.05  # only slightly

    def test_paper_headline_12_percent(self):
        """Peak gain ~12.1% around alpha = 0.3."""
        gains = {}
        for alpha in (0.1, 0.2, 0.3, 0.4, 0.5):
            one = one_keytree_cost(N, L, mixture(alpha), D)
            hom = loss_homogenized_cost(N, L, mixture(alpha), D)
            gains[alpha] = (one - hom) / one
        peak = max(gains.values())
        assert peak == pytest.approx(0.121, abs=0.03)
        assert max(gains, key=gains.get) in (0.2, 0.3)

    def test_random_partition_validation(self):
        with pytest.raises(ValueError):
            random_partition_cost(N, L, mixture(0.2), D, tree_count=0)


class TestMultiTreeCost:
    def test_empty_trees_cost_nothing(self):
        assert multi_tree_cost([], L, D) == 0.0
        assert multi_tree_cost([TreeSpec(0, ((0.1, 1.0),))], L, D) == 0.0

    def test_single_tree_has_no_joint_root_overhead(self):
        spec = TreeSpec.homogeneous(N, PL)
        assert multi_tree_cost([spec], L, D) == pytest.approx(
            one_keytree_cost(N, L, ((PL, 1.0),), D)
        )

    def test_joint_root_toggle(self):
        trees = [TreeSpec.homogeneous(N // 2, PH), TreeSpec.homogeneous(N // 2, PL)]
        with_root = multi_tree_cost(trees, L, D, include_joint_root=True)
        without = multi_tree_cost(trees, L, D, include_joint_root=False)
        assert with_root > without

    def test_departures_split_proportionally(self):
        """A tree twice the size absorbs twice the departures: the split
        keeps total cost consistent with manual accounting."""
        big = TreeSpec.homogeneous(2000, PL)
        small = TreeSpec.homogeneous(1000, PL)
        total = multi_tree_cost([big, small], 30, D, include_joint_root=False)
        from repro.analysis.wka import wka_rekey_cost

        manual = wka_rekey_cost(2000, 20, ((PL, 1.0),), D) + wka_rekey_cost(
            1000, 10, ((PL, 1.0),), D
        )
        assert total == pytest.approx(manual)


class TestFig7Misplacement:
    def test_beta_zero_is_correct_partition(self):
        specs = misplaced_partition_specs(N, 0.2, PH, PL, 0.0)
        assert multi_tree_cost(specs, L, D) == pytest.approx(
            loss_homogenized_cost(N, L, mixture(0.2), D)
        )

    def test_gain_decays_with_beta(self):
        costs = [
            multi_tree_cost(misplaced_partition_specs(N, 0.2, PH, PL, b), L, D)
            for b in (0.0, 0.2, 0.4, 0.6, 0.8)
        ]
        assert costs == sorted(costs)

    def test_small_beta_still_beats_one_keytree(self):
        """Paper: at beta <= 0.1 the scheme still wins."""
        one = one_keytree_cost(N, L, mixture(0.2), D)
        cost = multi_tree_cost(misplaced_partition_specs(N, 0.2, PH, PL, 0.1), L, D)
        assert cost < one

    def test_beta_one_improves_over_beta_08(self):
        """The paper's closing observation: at beta = 1.0 the populations
        have fully swapped, so cost drops again."""
        c08 = multi_tree_cost(misplaced_partition_specs(N, 0.2, PH, PL, 0.8), L, D)
        c10 = multi_tree_cost(misplaced_partition_specs(N, 0.2, PH, PL, 1.0), L, D)
        assert c10 < c08

    def test_swap_capacity_validation(self):
        with pytest.raises(ValueError):
            misplaced_partition_specs(N, 0.8, PH, PL, 0.9)  # 0.72 > 0.2
        with pytest.raises(ValueError):
            misplaced_partition_specs(N, 1.2, PH, PL, 0.5)
        with pytest.raises(ValueError):
            misplaced_partition_specs(N, 0.2, PH, PL, 1.5)

    def test_mixtures_are_normalized(self):
        for beta in (0.0, 0.3, 1.0):
            for spec in misplaced_partition_specs(N, 0.2, PH, PL, beta):
                assert sum(f for __, f in spec.mixture) == pytest.approx(1.0)
