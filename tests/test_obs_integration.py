"""End-to-end observability: one registry feeds every layer.

The acceptance contract of the obs layer:

* an observed simulation produces agreeing epoch counts across all three
  signal planes (metrics counter, epoch events, epoch spans);
* a sharded ``workers=4`` process-backend run merges its workers' metric
  deltas so the counted totals (rekeys, wraps, encrypted keys) are
  identical to the serial backend's;
* a chaos run's trace carries fault-window span events and retry-round
  spans;
* the whole artifact chain (``write_trace`` + ``write_metrics`` +
  ``repro.obs.check``) closes over itself.
"""

import pytest

import repro.obs as obs
from repro.members.durations import TwoClassDuration
from repro.members.population import LossPopulation
from repro.obs import check as obs_check
from repro.obs import metrics as obs_metrics
from repro.server.onetree import OneTreeServer
from repro.server.sharded import ShardedOneTreeServer
from repro.sim.simulation import GroupRekeyingSimulation, SimulationConfig


def small_config(**overrides):
    defaults = dict(
        arrival_rate=0.8,
        rekey_period=60.0,
        horizon=600.0,
        duration_model=TwoClassDuration(),
        verify=False,
        seed=3,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def test_observed_simulation_epoch_counts_agree():
    with obs.observe() as bundle:
        metrics = GroupRekeyingSimulation(
            OneTreeServer(degree=4), small_config()
        ).run()

    epochs = metrics.rekey_count
    assert epochs > 0
    assert bundle.registry.counter_total("server.rekeys") == epochs
    assert bundle.events.count("epoch") == epochs
    epoch_spans = [s for s in bundle.tracer.spans if s.name == "epoch"]
    assert len(epoch_spans) == epochs
    # Spans carry simulated time bound by the simulation's clock.
    assert all(s.sim_start is not None for s in epoch_spans)
    # The LKH phases appear under every rekey.
    for phase in ("mark", "generate", "wrap"):
        assert any(s.name == phase for s in bundle.tracer.spans)
    # The batch-cost histogram saw one observation per epoch.
    hist = bundle.registry.histogram("server.batch_cost")
    assert hist.stats()["count"] == epochs
    # The shim keeps feeding events through joins/departures too.
    assert bundle.events.count("join") >= metrics.joins_total


def churn(server, rounds=4, width=32):
    """Deterministic churn against a server; returns encrypted-key total."""
    total_keys = 0
    members = [f"m{i}" for i in range(width)]
    for member_id in members:
        server.join(member_id)
    total_keys += len(server.rekey().encrypted_keys)
    for round_no in range(rounds):
        for i in range(4):
            server.leave(members[round_no * 4 + i])
        joiners = [f"j{round_no}_{i}" for i in range(4)]
        for member_id in joiners:
            server.join(member_id)
        members.extend(joiners)
        total_keys += len(server.rekey().encrypted_keys)
    return total_keys


@pytest.mark.parametrize("backend,workers", [("thread", 4), ("process", 4)])
def test_sharded_workers_merge_matches_serial_totals(backend, workers):
    totals = {}
    for label, kwargs in (
        ("serial", dict(backend="serial", workers=1)),
        (backend, dict(backend=backend, workers=workers)),
    ):
        with obs_metrics.collecting() as registry:
            server = ShardedOneTreeServer(shards=4, degree=4, **kwargs)
            wire_keys = churn(server)
            server.close()
        totals[label] = {
            "rekeys": registry.counter_total("server.rekeys"),
            "wraps": registry.counter_total("crypto.wraps"),
            "encrypted_keys": registry.counter_total("server.encrypted_keys"),
            "wire_keys": wire_keys,
        }
    assert totals["serial"]["rekeys"] == 5
    assert totals["serial"]["wraps"] > 0
    assert totals["serial"]["encrypted_keys"] == totals["serial"]["wire_keys"]
    assert totals[backend] == totals["serial"]


def test_sharded_shard_spans_and_labeled_metrics():
    with obs.observe() as bundle:
        server = ShardedOneTreeServer(shards=4, degree=4)
        churn(server, rounds=2)
        server.close()
    shard_spans = [s for s in bundle.tracer.spans if s.name == "shard"]
    assert shard_spans
    shards_seen = {s.attributes["shard"] for s in shard_spans}
    assert shards_seen == {0, 1, 2, 3}
    hist = bundle.registry.histogram(
        "shard.batch_keys", labels=("shard",)
    )
    assert sum(hist.stats(shard=str(i))["count"] for i in range(4)) == len(
        shard_spans
    )


def test_chaos_trace_has_fault_windows_and_retry_rounds():
    from repro.faults.chaos import run_chaos_case

    with obs.observe() as bundle:
        report = run_chaos_case(
            "one", "blackout-resync", seed=7, horizon=900.0
        )
    assert report["rekeyings"] > 0
    fault_windows = [
        evt
        for span in bundle.tracer.spans
        for evt in span.events
        if evt.name == "fault-window"
    ]
    assert fault_windows, "no fault-window span events in a blackout run"
    retry_spans = [
        s
        for s in bundle.tracer.spans
        if s.name == "transport.round" and s.attributes.get("round", 0) > 0
    ]
    assert retry_spans, "no retry-round spans in a blackout run"
    assert bundle.events.count("retry_round") == len(retry_spans)
    # Abandonment/resync paths produce their events too.
    assert bundle.events.count("abandonment") == report["abandoned"]
    assert (
        bundle.events.count("resync")
        == report["recoveries"].get("count", 0)
    )


def test_artifact_chain_closes(tmp_path):
    from repro.transport.wka_bkr import WkaBkrProtocol

    with obs.observe() as bundle:
        GroupRekeyingSimulation(
            OneTreeServer(degree=4),
            small_config(
                transport=WkaBkrProtocol(keys_per_packet=16),
                loss_population=LossPopulation.two_point(),
            ),
        ).run()
    trace = tmp_path / "trace.jsonl"
    prom = tmp_path / "metrics.prom"
    obs.write_trace(bundle, trace)
    obs.write_metrics(bundle.registry, prom)
    line = obs_check.check(trace, prom)
    assert line.startswith("ok:")
    assert obs_check.main([str(trace), str(prom)]) == 0
