"""Tests for the worst-/best-case batch-cost bounds ([YLZL01])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.batchcost import (
    best_case_batch_cost,
    expected_batch_cost_full,
    worst_case_batch_cost,
)


class TestBounds:
    def test_single_departure_bounds_coincide(self):
        # One departure touches exactly one path whatever its placement.
        for n in (64, 256, 4096):
            assert worst_case_batch_cost(n, 1, 4) == best_case_batch_cost(n, 1, 4)

    def test_all_depart_bounds_coincide(self):
        assert worst_case_batch_cost(256, 256, 4) == best_case_batch_cost(
            256, 256, 4
        )

    @pytest.mark.parametrize("l", [2, 8, 32, 128])
    def test_expected_between_bounds(self, l):
        n = 4096
        expected = expected_batch_cost_full(n, l, 4)
        assert best_case_batch_cost(n, l, 4) - 1e-9 <= expected
        assert expected <= worst_case_batch_cost(n, l, 4) + 1e-9

    def test_worst_case_closed_form(self):
        # N=64, d=4, L=5: levels hit min(1,5)+min(4,5)+min(16,5) = 1+4+5
        assert worst_case_batch_cost(64, 5, 4) == 4 * (1 + 4 + 5)

    def test_best_case_closed_form(self):
        # N=64, d=4, L=5: ceil(5/64)+ceil(5/16)+ceil(5/4) = 1+1+2
        assert best_case_batch_cost(64, 5, 4) == 4 * (1 + 1 + 2)

    def test_trivial_inputs(self):
        assert worst_case_batch_cost(0, 5, 4) == 0.0
        assert best_case_batch_cost(100, 0, 4) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            worst_case_batch_cost(100, 5, 1)
        with pytest.raises(ValueError):
            best_case_batch_cost(100, 5, 0)


@settings(max_examples=60, deadline=None)
@given(
    height=st.integers(min_value=1, max_value=6),
    l=st.integers(min_value=1, max_value=4096),
    d=st.integers(min_value=2, max_value=8),
)
def test_bound_ordering_property(height, l, d):
    # The three formulas share a tree model only when N is an exact power
    # of d (the closed form pads other N up to the next power, which can
    # price more level nodes than the capped bounds assume).
    n = d**height
    l = min(l, n)
    best = best_case_batch_cost(n, l, d)
    expected = expected_batch_cost_full(n, l, d)
    worst = worst_case_batch_cost(n, l, d)
    # 1e-6 relative tolerance: the closed form accumulates lgamma rounding
    # (e.g. 36.0000013 vs the bounds' exact 36.0 at N = 6^6, L = 1).
    assert best <= expected * (1 + 1e-6) + 1e-6
    assert expected <= worst * (1 + 1e-6) + 1e-6
