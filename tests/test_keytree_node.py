"""Unit tests for key-tree nodes."""

import pytest

from repro.crypto.material import KeyGenerator
from repro.keytree.node import Node


@pytest.fixture
def gen():
    return KeyGenerator(4)


def make_leaf(gen, member):
    return Node(f"member:{member}", gen.generate(f"member:{member}"), member_id=member)


def make_internal(gen, node_id):
    return Node(node_id, gen.generate(node_id))


class TestStructure:
    def test_leaf_properties(self, gen):
        leaf = make_leaf(gen, "a")
        assert leaf.is_leaf
        assert leaf.leaf_count == 1
        assert leaf.is_root

    def test_internal_starts_empty(self, gen):
        node = make_internal(gen, "n0")
        assert not node.is_leaf
        assert node.leaf_count == 0

    def test_add_child_links_and_counts(self, gen):
        root = make_internal(gen, "root")
        leaf = make_leaf(gen, "a")
        root.add_child(leaf)
        assert leaf.parent is root
        assert root.children == [leaf]
        assert root.leaf_count == 1

    def test_leaf_count_propagates_to_ancestors(self, gen):
        root = make_internal(gen, "root")
        mid = make_internal(gen, "mid")
        root.add_child(mid)
        mid.add_child(make_leaf(gen, "a"))
        mid.add_child(make_leaf(gen, "b"))
        assert mid.leaf_count == 2
        assert root.leaf_count == 2

    def test_remove_child_unlinks_and_counts(self, gen):
        root = make_internal(gen, "root")
        leaf = make_leaf(gen, "a")
        root.add_child(leaf)
        root.remove_child(leaf)
        assert leaf.parent is None
        assert root.children == []
        assert root.leaf_count == 0

    def test_insert_child_preserves_position(self, gen):
        root = make_internal(gen, "root")
        a, b, c = (make_leaf(gen, x) for x in "abc")
        root.add_child(a)
        root.add_child(b)
        root.insert_child(1, c)
        assert [n.member_id for n in root.children] == ["a", "c", "b"]
        assert root.leaf_count == 3

    def test_add_child_rejects_already_parented(self, gen):
        r1, r2 = make_internal(gen, "r1"), make_internal(gen, "r2")
        leaf = make_leaf(gen, "a")
        r1.add_child(leaf)
        with pytest.raises(ValueError):
            r2.add_child(leaf)
        with pytest.raises(ValueError):
            r2.insert_child(0, leaf)

    def test_remove_child_rejects_non_child(self, gen):
        r1, r2 = make_internal(gen, "r1"), make_internal(gen, "r2")
        leaf = make_leaf(gen, "a")
        r1.add_child(leaf)
        with pytest.raises(ValueError):
            r2.remove_child(leaf)


class TestTraversal:
    def build(self, gen):
        root = make_internal(gen, "root")
        left = make_internal(gen, "left")
        root.add_child(left)
        a, b = make_leaf(gen, "a"), make_leaf(gen, "b")
        left.add_child(a)
        left.add_child(b)
        c = make_leaf(gen, "c")
        root.add_child(c)
        return root, left, a, b, c

    def test_depth(self, gen):
        root, left, a, __, c = self.build(gen)
        assert root.depth == 0
        assert left.depth == 1
        assert a.depth == 2
        assert c.depth == 1

    def test_path_to_root(self, gen):
        root, left, a, __, __ = self.build(gen)
        assert a.path_to_root() == [a, left, root]

    def test_iter_subtree_preorder(self, gen):
        root, left, a, b, c = self.build(gen)
        assert list(root.iter_subtree()) == [root, left, a, b, c]

    def test_iter_leaves(self, gen):
        root, __, a, b, c = self.build(gen)
        assert list(root.iter_leaves()) == [a, b, c]
