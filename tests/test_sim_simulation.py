"""Integration tests for the end-to-end rekeying simulation."""

import pytest

from repro.members.durations import TwoClassDuration
from repro.members.population import LossPopulation
from repro.server.losshomog import LossHomogenizedServer
from repro.server.onetree import OneTreeServer
from repro.server.twopartition import TwoPartitionServer
from repro.sim.metrics import RekeyRecord, SimulationMetrics
from repro.sim.simulation import GroupRekeyingSimulation, SimulationConfig
from repro.transport.wka_bkr import WkaBkrProtocol

FAST = dict(
    arrival_rate=0.4,
    rekey_period=60.0,
    horizon=1200.0,
    duration_model=TwoClassDuration(180.0, 2400.0, 0.7),
)


def run(server, seed=3, **overrides):
    config = SimulationConfig(**{**FAST, **overrides, "seed": seed})
    return GroupRekeyingSimulation(server, config).run()


class TestSecurityInvariants:
    """verify=True makes the simulation assert, after every rekeying, that
    every member holds the current group key and no recently departed
    member does — across every scheme."""

    def test_one_keytree(self):
        metrics = run(OneTreeServer(degree=4))
        assert metrics.verification_checks == metrics.rekey_count > 0

    @pytest.mark.parametrize("mode", ["qt", "tt", "pt"])
    def test_two_partition(self, mode):
        metrics = run(TwoPartitionServer(mode=mode, s_period=240.0))
        assert metrics.verification_checks == metrics.rekey_count > 0

    @pytest.mark.parametrize("placement", ["loss", "random"])
    def test_loss_homogenized(self, placement):
        metrics = run(
            LossHomogenizedServer(class_rates=(0.2, 0.02), placement=placement),
            loss_population=LossPopulation.two_point(),
        )
        assert metrics.verification_checks == metrics.rekey_count > 0


class TestTransportIntegration:
    def test_wka_bkr_delivers_every_rekey(self):
        metrics = run(
            OneTreeServer(degree=4),
            loss_population=LossPopulation.two_point(),
            transport=WkaBkrProtocol(keys_per_packet=8),
        )
        assert metrics.total_transport_keys >= metrics.total_cost > 0

    def test_transport_keys_zero_without_transport(self):
        metrics = run(OneTreeServer(degree=4))
        assert metrics.total_transport_keys == 0


class TestDeterminism:
    def test_same_seed_same_run(self):
        a = run(OneTreeServer(degree=4), seed=9)
        b = run(OneTreeServer(degree=4), seed=9)
        assert [r.cost for r in a.records] == [r.cost for r in b.records]
        assert a.joins_total == b.joins_total

    def test_different_seeds_differ(self):
        a = run(OneTreeServer(degree=4), seed=9)
        b = run(OneTreeServer(degree=4), seed=10)
        assert [r.cost for r in a.records] != [r.cost for r in b.records]


class TestMetrics:
    def test_record_counting(self):
        metrics = SimulationMetrics()
        metrics.add(
            RekeyRecord(
                time=60.0,
                epoch=1,
                cost=10,
                joined=3,
                departed=1,
                migrated=0,
                group_size=2,
                breakdown={"tree": 10},
            )
        )
        metrics.add(
            RekeyRecord(
                time=120.0,
                epoch=2,
                cost=6,
                joined=0,
                departed=2,
                migrated=1,
                group_size=0,
                breakdown={"tree": 4, "group-key": 2},
            )
        )
        assert metrics.total_cost == 16
        assert metrics.joins_total == 3
        assert metrics.departures_total == 3
        assert metrics.mean_cost() == 8.0
        assert metrics.mean_cost(skip=1) == 6.0
        assert metrics.mean_cost_per_departure() == pytest.approx(16 / 3)
        assert metrics.breakdown_totals() == {"tree": 14, "group-key": 2}

    def test_empty_metrics_are_zero(self):
        metrics = SimulationMetrics()
        assert metrics.mean_cost() == 0.0
        assert metrics.mean_cost_per_departure() == 0.0
        assert metrics.mean_group_size() == 0.0

    def test_group_size_tracks_population(self):
        metrics = run(OneTreeServer(degree=4), seed=2)
        assert metrics.mean_group_size(skip=5) > 0
