"""Model-vs-simulation cross-validation gates.

These are the repository's strongest claims: the analytic curves the
figures are built from agree with the behaviour of the real system.
Thresholds are generous (real trees are rougher than the idealized model)
but tight enough to catch a broken model or a broken simulator.
"""

import pytest

from repro.experiments.validation import (
    validate_batch_cost,
    validate_two_partition,
    validate_wka_transport,
)


@pytest.mark.slow
class TestCrossValidation:
    def test_appendix_a_batch_cost(self):
        result = validate_batch_cost(group_size=1024, departures=32, batches=20)
        assert result.relative_error < 0.05

    def test_section_33_one_keytree(self):
        result = validate_two_partition("one")
        assert result.relative_error < 0.15

    def test_section_33_tt_scheme(self):
        result = validate_two_partition("tt")
        assert result.relative_error < 0.15

    def test_section_33_qt_scheme(self):
        result = validate_two_partition("qt")
        assert result.relative_error < 0.15

    def test_appendix_b_wka_transport(self):
        result = validate_wka_transport(trials=10)
        assert result.relative_error < 0.25
