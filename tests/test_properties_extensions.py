"""Property-based tests for the extension schemes."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.material import KeyGenerator
from repro.keytree.marks import MarksKeySequence, MarksReceiver
from repro.keytree.probabilistic import HuffmanKeyTree
from repro.keytree.serialize import tree_from_dict, tree_to_dict
from repro.keytree.subsetcover import CompleteSubtreeCenter
from repro.keytree.tree import KeyTree


@settings(max_examples=40, deadline=None)
@given(
    depth=st.integers(min_value=2, max_value=8),
    interval=st.data(),
)
def test_marks_cover_partitions_exactly(depth, interval):
    sequence = MarksKeySequence(depth=depth, keygen=KeyGenerator(0))
    slots = sequence.slots
    start = interval.draw(st.integers(min_value=0, max_value=slots - 1))
    end = interval.draw(st.integers(min_value=start + 1, max_value=slots))
    covered = []
    for d, index in sequence.cover(start, end):
        span = 1 << (depth - d)
        covered.extend(range(index * span, index * span + span))
    assert sorted(covered) == list(range(start, end))
    assert len(sequence.cover(start, end)) <= 2 * depth
    # Receiver semantics match the cover.
    receiver = MarksReceiver(depth, sequence.grant(start, end))
    assert receiver.covered_slots() == list(range(start, end))


@settings(max_examples=30, deadline=None)
@given(
    depth=st.integers(min_value=2, max_value=8),
    revocations=st.data(),
)
def test_complete_subtree_cover_is_exact_complement(depth, revocations):
    center = CompleteSubtreeCenter(depth=depth, keygen=KeyGenerator(1))
    capacity = center.capacity
    count = revocations.draw(st.integers(min_value=0, max_value=capacity))
    revoked = set(
        revocations.draw(
            st.lists(
                st.integers(min_value=0, max_value=capacity - 1),
                min_size=count,
                max_size=count,
            )
        )
    )
    for slot in revoked:
        center.revoke(slot)
    covered = set()
    for d, index in center.cover():
        span = 1 << (depth - d)
        block = set(range(index * span, index * span + span))
        assert not block & covered
        covered |= block
    assert covered == set(range(capacity)) - revoked


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(
        st.floats(min_value=0.01, max_value=1000.0, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    degree=st.integers(min_value=2, max_value=5),
)
def test_huffman_tree_contains_every_member_once(weights, degree):
    mapping = {f"m{i}": w for i, w in enumerate(weights)}
    tree = HuffmanKeyTree(mapping, degree=degree)
    leaves = [leaf.member_id for leaf in tree.root.iter_leaves()]
    assert sorted(leaves) == sorted(mapping)
    # Depths never exceed a chain of merges.
    assert all(tree.depth_of(m) <= len(weights) for m in mapping)


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(st.booleans(), min_size=1, max_size=60),
    degree=st.integers(min_value=2, max_value=5),
)
def test_tree_serialization_roundtrips_under_churn(ops, degree):
    tree = KeyTree(degree=degree, keygen=KeyGenerator(2))
    alive = []
    counter = 0
    for join in ops:
        if join or not alive:
            tree.add_member(f"m{counter}")
            alive.append(f"m{counter}")
            counter += 1
        else:
            tree.remove_member(alive.pop(0))
    restored = tree_from_dict(tree_to_dict(tree))
    assert sorted(restored.members()) == sorted(tree.members())
    for node in tree.iter_nodes():
        assert restored.node(node.node_id).key == node.key
    restored.validate()


@settings(max_examples=25, deadline=None)
@given(count=st.integers(min_value=1, max_value=40), seed=st.integers(0, 1000))
def test_member_absorb_is_idempotent(count, seed):
    """Processing the same rekey message twice changes nothing."""
    from repro.keytree.lkh import LkhRekeyer
    from repro.members.member import Member

    tree = KeyTree(degree=4, keygen=KeyGenerator(seed))
    rekeyer = LkhRekeyer(tree)
    members = [f"m{i}" for i in range(count)]
    rekeyer.rekey_batch(joins=[(m, None) for m in members])
    target = random.Random(seed).choice(members)
    member = Member(target, tree.leaf_of(target).key)
    for node in tree.path_of(target):
        member.install(node.key)
    message = rekeyer.rekey_batch(joins=[("late", None)])
    member.process_rekey(message)
    state_once = dict(member.held_versions())
    member.process_rekey(message)
    assert member.held_versions() == state_once
