"""Unit tests for the Section 4.4 proactive-FEC bandwidth model."""

import pytest

from repro.analysis.fec import (
    FecParameters,
    expected_block_cost,
    fec_loss_homogenized_cost,
    fec_multi_tree_cost,
    fec_one_keytree_cost,
    fec_tree_cost,
)
from repro.analysis.losshomog import TreeSpec

N, L, D = 65_536, 256, 4
PH, PL = 0.20, 0.02


def mixture(alpha):
    pairs = []
    if alpha > 0:
        pairs.append((PH, alpha))
    if alpha < 1:
        pairs.append((PL, 1 - alpha))
    return tuple(pairs)


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            FecParameters(block_size=0)
        with pytest.raises(ValueError):
            FecParameters(proactivity=0.9)
        with pytest.raises(ValueError):
            FecParameters(keys_per_packet=0)


class TestBlockCost:
    def test_zero_receivers_free(self):
        assert expected_block_cost(16, 0, ((0.1, 1.0),)) == 0.0

    def test_zero_loss_costs_payload_plus_proactive_parity(self):
        params = FecParameters(proactivity=1.25)
        cost = expected_block_cost(16, 1000, ((0.0, 1.0),), params)
        assert cost == 16 + 4  # k + ceil(0.25k), no reactive rounds

    def test_no_proactivity_zero_loss_is_just_payload(self):
        params = FecParameters(proactivity=1.0)
        assert expected_block_cost(16, 1000, ((0.0, 1.0),), params) == 16.0

    def test_cost_grows_with_loss(self):
        costs = [
            expected_block_cost(16, 1000, ((p, 1.0),)) for p in (0.01, 0.1, 0.3)
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_minority_high_loss_dominates(self):
        """The mechanism behind Section 4.4: a 10% high-loss minority
        pushes the block cost close to the all-high cost."""
        all_low = expected_block_cost(16, 1000, ((PL, 1.0),))
        minority = expected_block_cost(16, 1000, ((PH, 0.1), (PL, 0.9)))
        all_high = expected_block_cost(16, 1000, ((PH, 1.0),))
        assert minority > all_low
        assert (minority - all_low) > 0.5 * (all_high - all_low)


class TestTreeCosts:
    def test_trivial_inputs_free(self):
        assert fec_tree_cost(TreeSpec.homogeneous(0, PL), L) == 0.0
        assert fec_tree_cost(TreeSpec.homogeneous(N, PL), 0) == 0.0

    def test_homogenized_beats_one_tree_in_the_middle(self):
        for alpha in (0.05, 0.1, 0.3):
            one = fec_one_keytree_cost(N, L, mixture(alpha), D)
            hom = fec_loss_homogenized_cost(N, L, mixture(alpha), D)
            assert hom < one

    def test_endpoints_coincide(self):
        for alpha in (0.0, 1.0):
            assert fec_loss_homogenized_cost(N, L, mixture(alpha), D) == pytest.approx(
                fec_one_keytree_cost(N, L, mixture(alpha), D)
            )

    def test_paper_headline_gain_at_alpha_01(self):
        """Paper: up to 25.7% under proactive FEC at alpha = 0.1.  Our
        block parameters differ from (unreported) [YLZL01] settings, so we
        assert the gain lands in the same band and exceeds the WKA gain."""
        one = fec_one_keytree_cost(N, L, mixture(0.1), D)
        hom = fec_loss_homogenized_cost(N, L, mixture(0.1), D)
        gain = (one - hom) / one
        assert 0.15 < gain < 0.45

        from repro.analysis.losshomog import (
            loss_homogenized_cost,
            one_keytree_cost,
        )

        wka_gain = 1 - loss_homogenized_cost(N, L, mixture(0.1), D) / one_keytree_cost(
            N, L, mixture(0.1), D
        )
        assert gain > wka_gain

    def test_multi_tree_splits_departures(self):
        trees = [TreeSpec.homogeneous(N // 2, PH), TreeSpec.homogeneous(N // 2, PL)]
        total = fec_multi_tree_cost(trees, L, D)
        manual = fec_tree_cost(trees[0], L / 2, D) + fec_tree_cost(trees[1], L / 2, D)
        assert total == pytest.approx(manual)

    def test_empty_forest_free(self):
        assert fec_multi_tree_cost([], L, D) == 0.0
