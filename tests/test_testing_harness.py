"""Meta-tests for the conformance subsystem itself.

A verification harness is only worth trusting if it *fails* on broken
servers, so these tests feed it deliberately sabotaged mutants of
:class:`OneTreeServer` — each a realistic implementation mistake — and
require an :class:`InvariantViolation` naming the right problem.
"""

import pytest

from repro.crypto.wrap import wrap_key
from repro.server.base import BatchResult
from repro.server.onetree import OneTreeServer
from repro.testing import (
    ConformanceHarness,
    InvariantViolation,
    Scenario,
    ShadowGroup,
)

CHURN = Scenario.parse("+a +b +c . -b .", name="churn")


def run_against(server, scenario=CHURN):
    return scenario.run(ConformanceHarness(server))


# ----------------------------------------------------------------------
# mutants the harness must reject
# ----------------------------------------------------------------------


class NoRefreshServer(OneTreeServer):
    """Departures prune the tree but never refresh any key."""

    def _process_batch(self, result, joins, leaves, now):
        if leaves and not joins:
            for member_id in leaves:
                self.tree.remove_member(member_id)
            return
        super()._process_batch(result, joins, leaves, now)


class LeakyWrapServer(OneTreeServer):
    """Wraps the fresh group key under the previous one on departures,
    so an evicted member can chain forward to current traffic."""

    def _process_batch(self, result, joins, leaves, now):
        previous = self.tree.root.key if self.tree.size else None
        super()._process_batch(result, joins, leaves, now)
        if leaves and previous is not None:
            result.extend("leak", [wrap_key(previous, self.tree.root.key)])


class OwfOnLeaveServer(OneTreeServer):
    """Uses one-way advances to 'refresh' after a departure — the evicted
    member can run the same hash chain (the misuse the paper's LKH+
    discussion warns about)."""

    def _process_batch(self, result, joins, leaves, now):
        if leaves and not joins and self.tree.size:
            for member_id in leaves:
                self.tree.remove_member(member_id)
            for node in list(self.tree.iter_nodes()):
                if not node.is_leaf:
                    node.key = node.key.advance()
                    result.advanced.append((node.key.key_id, node.key.version))
            return
        super()._process_batch(result, joins, leaves, now)


class LyingEpochServer(OneTreeServer):
    def rekey(self, now=0.0):
        result = super().rekey(now=now)
        result.epoch += 1
        return result


class LyingBreakdownServer(OneTreeServer):
    def rekey(self, now=0.0):
        result = super().rekey(now=now)
        if result.breakdown:
            result.breakdown["tree"] += 1
        return result


class ForgetfulJoinServer(OneTreeServer):
    """Omits a joiner from the reported batch result."""

    def rekey(self, now=0.0):
        result = super().rekey(now=now)
        if result.joined:
            result.joined = result.joined[:-1]
        return result


class BrokenResyncServer(OneTreeServer):
    """Resync omits the group key — recovered members stay deaf."""

    def _current_keys_of(self, member_id):
        return super()._current_keys_of(member_id)[:-1]


@pytest.mark.parametrize(
    "server_cls, fragment",
    [
        (NoRefreshServer, "no key material"),
        (LeakyWrapServer, "derive the current group key"),
        (OwfOnLeaveServer, "derive the current group key"),
        (LyingEpochServer, "expected epoch"),
        (LyingBreakdownServer, "breakdown attributes"),
        (ForgetfulJoinServer, "joined"),
    ],
    ids=lambda v: getattr(v, "__name__", v),
)
def test_harness_rejects_mutant(server_cls, fragment):
    with pytest.raises(InvariantViolation, match=fragment):
        run_against(server_cls())


def test_harness_rejects_broken_resync():
    with pytest.raises(InvariantViolation, match="resync failed"):
        Scenario.parse("+a +b . !a", name="x").run(
            ConformanceHarness(BrokenResyncServer())
        )


def test_correct_server_passes_the_same_scenarios():
    harness = run_against(OneTreeServer())
    assert harness.epochs == 2
    assert harness.total_cost() > 0
    harness.check_all_resyncs()


# ----------------------------------------------------------------------
# shadow model unit behaviour
# ----------------------------------------------------------------------


def test_shadow_rejects_duplicate_join():
    shadow = ShadowGroup()
    shadow.join("a")
    with pytest.raises(InvariantViolation, match="duplicate join"):
        shadow.join("a")


def test_shadow_rejects_unknown_departure():
    with pytest.raises(InvariantViolation, match="unknown member"):
        ShadowGroup().leave("ghost")


def test_shadow_join_leave_same_period_vanishes():
    shadow = ShadowGroup()
    shadow.join("a")
    shadow.leave("a")
    assert not shadow.pending_joins and not shadow.pending_leaves


def test_shadow_audits_real_server_stream(rekeyer_server):
    server, shadow = rekeyer_server, ShadowGroup()
    for member_id in ("a", "b", "c"):
        server.join(member_id)
        shadow.join(member_id)
    shadow.audit(server, server.rekey())
    server.leave("b")
    shadow.leave("b")
    shadow.audit(server, server.rekey())
    assert shadow.members == {"a", "c"}


@pytest.fixture
def rekeyer_server():
    return OneTreeServer(degree=2)


# ----------------------------------------------------------------------
# scenario parser
# ----------------------------------------------------------------------


def test_scenario_parse_round_trip():
    scenario = Scenario.parse("+a +b@Cl +c@0.2 . t+600 -a . !b !*", name="p")
    kinds = [op[0] for op in scenario.ops]
    assert kinds == [
        "join", "join", "join", "rekey", "tick", "leave", "rekey",
        "resync", "resync",
    ]
    assert scenario.ops[1][2] == {"member_class": "Cl"}
    assert scenario.ops[2][2] == {"loss_rate": 0.2}
    assert scenario.ops[4][1] == 600.0
    assert scenario.ops[7][1] == "b" and scenario.ops[8][1] is None


@pytest.mark.parametrize("bad", ["?x", "+", "-", "t+abc"])
def test_scenario_parse_rejects_garbage(bad):
    with pytest.raises(ValueError):
        Scenario.parse(bad)


def test_harness_tracks_never_admitted_ghost():
    harness = ConformanceHarness(OneTreeServer())
    harness.join("a")
    harness.join("ghost")
    harness.leave("ghost")  # same period: vanishes without keys
    result = harness.rekey()
    assert result.joined == ["a"]
    assert "ghost" not in harness.members
    assert not harness.adversaries


def test_harness_time_only_moves_forward():
    harness = ConformanceHarness(OneTreeServer())
    harness.advance_time(10.0)
    with pytest.raises(ValueError):
        harness.advance_time(-1.0)
