"""FaultyChannel: schedule windows applied to delivery draws."""

from repro.faults.channel import FaultyChannel
from repro.faults.schedule import (
    Blackout,
    DeliveryJitter,
    DuplicateDelivery,
    FaultSchedule,
    LossBurst,
)
from repro.network.channel import MulticastChannel
from repro.network.loss import BernoulliLoss


class _Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def test_blackout_forces_total_loss():
    clock = _Clock()
    schedule = FaultSchedule.of(
        [Blackout(start=10.0, duration=10.0, receivers=frozenset({"dark"}))]
    )
    channel = FaultyChannel(schedule, clock=clock, seed=1)
    channel.subscribe("dark", BernoulliLoss(0.0))
    channel.subscribe("lit", BernoulliLoss(0.0))

    clock.now = 5.0  # before the window
    assert channel.multicast("p").delivered_to == {"dark", "lit"}
    clock.now = 15.0  # inside
    for __ in range(20):
        report = channel.multicast("p")
        assert "dark" in report.lost_at
        assert "lit" in report.delivered_to
    clock.now = 25.0  # after
    assert channel.multicast("p").delivered_to == {"dark", "lit"}
    assert channel.blackout_losses == 20


def test_burst_overrides_loss_and_resumes_unshifted():
    """During a burst the GE override draws; afterwards the steady-state
    process continues exactly where an un-faulted run would be."""
    def outcomes(schedule, packets, clock_times):
        clock = _Clock()
        channel = FaultyChannel(schedule, clock=clock, seed=9)
        channel.subscribe("r", BernoulliLoss(0.3))
        seen = []
        for i in range(packets):
            clock.now = clock_times[i]
            seen.append("r" in channel.multicast(i).delivered_to)
        return seen

    quiet = FaultSchedule()
    bursty = FaultSchedule.of(
        [LossBurst(start=10.0, duration=10.0, bad_loss=1.0, good_loss=1.0,
                   p_good_to_bad=0.5, p_bad_to_good=0.1)]
    )
    times = [float(i) for i in range(30)]
    base = outcomes(quiet, 30, times)
    faulted = outcomes(bursty, 30, times)
    # Inside the window (t in [10, 20)) everything is lost (loss 1 in both
    # states); outside it the draws match the un-faulted run exactly.
    assert faulted[:10] == base[:10]
    assert faulted[10:20] == [False] * 10
    assert faulted[20:] == base[20:]


def test_burst_chains_are_per_receiver():
    schedule = FaultSchedule.of(
        [LossBurst(start=0.0, duration=100.0, p_good_to_bad=0.3,
                   p_bad_to_good=0.3, good_loss=0.0, bad_loss=1.0)]
    )
    channel = FaultyChannel(schedule, seed=4)
    channel.subscribe("a", BernoulliLoss(0.0))
    channel.subscribe("b", BernoulliLoss(0.0))
    a_hits, b_hits = [], []
    for i in range(200):
        report = channel.multicast(i)
        a_hits.append("a" in report.delivered_to)
        b_hits.append("b" in report.delivered_to)
    # Independent chains: the two receivers' burst patterns differ.
    assert a_hits != b_hits
    assert channel.burst_losses > 0


def test_duplicates_counted_and_probability_zero_outside_window():
    clock = _Clock(now=5.0)
    schedule = FaultSchedule.of(
        [DuplicateDelivery(start=0.0, duration=10.0, probability=1.0)]
    )
    channel = FaultyChannel(schedule, clock=clock, seed=2)
    channel.subscribe("r", BernoulliLoss(0.0))
    channel.multicast("p")
    assert channel.duplicates_delivered == 1
    assert channel.receptions == 2  # original + duplicate
    clock.now = 50.0
    channel.multicast("p")
    assert channel.duplicates_delivered == 1


def test_jitter_shuffles_order_but_not_outcomes():
    """Per-receiver streams make draw outcomes independent of processing
    order, so a jittered channel reports identical outcomes."""
    ids = [f"r{i}" for i in range(12)]

    def run(schedule):
        clock = _Clock(now=5.0)
        channel = FaultyChannel(schedule, clock=clock, seed=6)
        for rid in ids:
            channel.subscribe(rid, BernoulliLoss(0.4))
        reports = []
        for i in range(40):
            reports.append(
                frozenset(channel.multicast(i, audience=set(ids)).delivered_to)
            )
        return reports, channel

    plain_reports, __ = run(FaultSchedule())
    jitter_reports, jitter_channel = run(
        FaultSchedule.of([DeliveryJitter(start=0.0, duration=100.0)])
    )
    assert jitter_channel.jittered_packets == 40
    assert jitter_reports == plain_reports


def test_no_windows_behaves_like_parent():
    plain = MulticastChannel(seed=8)
    faulty = FaultyChannel(FaultSchedule(), seed=8)
    for channel in (plain, faulty):
        channel.subscribe("x", BernoulliLoss(0.5))
    plain_seen = [bool(plain.multicast(i).delivered_to) for i in range(100)]
    faulty_seen = [bool(faulty.multicast(i).delivered_to) for i in range(100)]
    assert plain_seen == faulty_seen
