"""Unit tests for tree statistics."""

from repro.keytree.stats import collect_stats
from repro.keytree.tree import KeyTree

from tests.helpers import populate
from repro.keytree.lkh import LkhRekeyer


def test_empty_tree_stats(tree):
    stats = collect_stats(tree)
    assert stats.members == 0
    assert stats.internal == 1  # the permanent root
    assert stats.height == 0


def test_full_tree_is_tight_and_fully_occupied(keygen):
    tree = KeyTree(degree=4, keygen=keygen)
    for i in range(64):
        tree.add_member(f"m{i}")
    stats = collect_stats(tree)
    assert stats.members == 64
    assert stats.height == 3
    assert stats.optimal_height == 3
    assert stats.occupancy == 1.0
    assert stats.is_tight
    assert stats.mean_fanout == 4.0


def test_partial_tree_occupancy_below_one(keygen):
    tree = KeyTree(degree=4, keygen=keygen)
    for i in range(40):
        tree.add_member(f"m{i}")
    stats = collect_stats(tree)
    assert 0 < stats.occupancy < 1.0
    assert stats.members == 40


def test_level_populations_sum_to_node_count(keygen):
    tree = KeyTree(degree=3, keygen=keygen)
    for i in range(30):
        tree.add_member(f"m{i}")
    stats = collect_stats(tree)
    total_nodes = sum(1 for __ in tree.iter_nodes())
    assert sum(stats.level_populations.values()) == total_nodes


def test_stats_after_churn_remain_consistent(keygen):
    tree = KeyTree(degree=4, keygen=keygen)
    rekeyer = LkhRekeyer(tree)
    populate(rekeyer, 50)
    rekeyer.rekey_batch(departures=[f"m{i}" for i in range(0, 20)])
    stats = collect_stats(tree)
    assert stats.members == 30
    assert stats.internal >= 1
    assert stats.min_leaf_depth <= stats.height
