"""The ``repro bench --compare`` regression gate (compare_reports)."""

import json

from repro.perf.bench import WORKLOAD_KEYS, compare_reports


def cell(name="cost-only-1k", cost=100.0, total_s=1.0, **overrides):
    base = {
        "name": name,
        "members": 1_000,
        "mode": "cost-only",
        "rounds": 5,
        "churn": 16,
        "sample_receivers": 500,
        "server": "one",
        "shards": 1,
        "workers": 1,
        "backend": "serial",
        "kernel": "object",
        "bulk": False,
        "threads": 1,
        "arena": False,
        "optimized": {"total_s": total_s, "mean_batch_cost": cost},
        "baseline": None,
        "speedup": None,
        "serial_ref": None,
        "speedup_vs_serial": None,
        "mean_batch_cost_matches_serial": None,
        "object_ref": None,
        "speedup_vs_object": None,
        "mean_batch_cost_matches_object": None,
        "flat_ref": None,
        "speedup_vs_flat": None,
        "mean_batch_cost_matches_flat": None,
        "bulk_ref": None,
        "speedup_vs_bulk": None,
        "mean_batch_cost_matches_bulk": None,
        "peak_rss_kb": None,
    }
    base.update(overrides)
    return base


def report(cells, cpus=4, warnings=()):
    return {
        "version": 2,
        "suite": "hotpath",
        "cpus": cpus,
        "warnings": list(warnings),
        "scenarios": cells,
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        current, baseline = report([cell()]), report([cell()])
        diff = compare_reports(current, baseline)
        assert diff["failures"] == []
        assert diff["warnings"] == []
        assert diff["compared"] == ["cost-only-1k"]
        assert diff["skipped"] == []

    def test_cost_change_fails_even_on_mismatched_hosts(self):
        current = report([cell(cost=120.0)], cpus=8)
        baseline = report([cell(cost=100.0)], cpus=1, warnings=["<2 CPUs"])
        diff = compare_reports(current, baseline)
        assert len(diff["failures"]) == 1
        assert "mean_batch_cost" in diff["failures"][0]

    def test_gate_flip_true_to_false_fails(self):
        current = report([cell(mean_batch_cost_matches_serial=False)])
        baseline = report([cell(mean_batch_cost_matches_serial=True)])
        diff = compare_reports(current, baseline)
        assert any("flipped" in line for line in diff["failures"])
        # The reverse direction (None/False -> True) is not a regression.
        assert not compare_reports(baseline, current)["failures"]

    def test_wall_slowdown_fails_only_on_comparable_hosts(self):
        current, baseline = report([cell(total_s=2.0)]), report([cell(total_s=1.0)])
        diff = compare_reports(current, baseline)
        assert any("wall time" in line for line in diff["failures"])

        warned_baseline = report(
            [cell(total_s=1.0)], cpus=1, warnings=["recorded on <2 CPUs"]
        )
        diff = compare_reports(current, warned_baseline)
        assert diff["failures"] == []
        assert any("wall time" in line for line in diff["warnings"])
        assert any("not comparable" in line for line in diff["warnings"])

    def test_wall_slowdown_within_tolerance_is_silent(self):
        current, baseline = report([cell(total_s=1.2)]), report([cell(total_s=1.0)])
        diff = compare_reports(current, baseline)
        assert diff["failures"] == [] and diff["warnings"] == []

    def test_cpu_count_mismatch_downgrades_wall_failures(self):
        current = report([cell(total_s=2.0)], cpus=8)
        baseline = report([cell(total_s=1.0)], cpus=4)
        diff = compare_reports(current, baseline)
        assert diff["failures"] == []
        assert any("cpu counts differ" in line for line in diff["warnings"])

    def test_workload_mismatch_is_skipped_not_diffed(self):
        # Same cell name, different round count (quick vs standard).
        current = report([cell(rounds=3, cost=60.0, total_s=9.0)])
        baseline = report([cell(rounds=5, cost=100.0, total_s=1.0)])
        diff = compare_reports(current, baseline)
        assert diff["failures"] == []
        assert diff["compared"] == []
        assert any("rounds" in line for line in diff["skipped"])

    def test_unmatched_cells_listed_both_ways(self):
        current = report([cell(name="only-current")])
        baseline = report([cell(name="only-baseline")])
        diff = compare_reports(current, baseline)
        skipped = "\n".join(diff["skipped"])
        assert "only-current: not in baseline" in skipped
        assert "only-baseline: baseline-only" in skipped

    def test_workload_keys_cover_every_scenario_field(self):
        # Every protocol/execution field of a result cell is part of the
        # match identity; a new BenchScenario knob must be added here too.
        sample = cell()
        for key in WORKLOAD_KEYS:
            assert key in sample


class TestCompareCli:
    def fake_report(self, **cell_overrides):
        full = report([cell(**cell_overrides)], cpus=4)
        full.update(
            {
                "quick": True,
                "workers": 1,
                "peak_rss_kb": None,
                "obs_overhead": {
                    "disabled_ns": {"metrics_inc": 100.0},
                    "budget_ns": 1500.0,
                    "pass": True,
                },
            }
        )
        return full

    def run_cli(self, tmp_path, monkeypatch, baseline, **cell_overrides):
        import repro.cli as cli
        import repro.perf.bench as bench

        monkeypatch.setattr(
            bench, "run_bench", lambda **kw: self.fake_report(**cell_overrides)
        )
        monkeypatch.chdir(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        return cli.main(
            [
                "bench",
                "--quick",
                "--out",
                str(tmp_path / "b.json"),
                "--compare",
                str(baseline_path),
            ]
        )

    def test_cost_regression_exits_1(self, tmp_path, capsys, monkeypatch):
        rc = self.run_cli(
            tmp_path, monkeypatch, self.fake_report(cost=90.0), cost=120.0
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "mean_batch_cost" in captured.err

    def test_provenance_mismatch_warns_and_passes(self, tmp_path, capsys, monkeypatch):
        baseline = self.fake_report(total_s=0.1)
        baseline["cpus"] = 1
        baseline["warnings"] = ["recorded on a host with <2 usable CPUs"]
        rc = self.run_cli(tmp_path, monkeypatch, baseline, total_s=5.0)
        captured = capsys.readouterr()
        assert rc == 0
        assert "WARNING" in captured.out
        assert "no cost regressions" in captured.out

    def test_unreadable_baseline_exits_2(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli
        import repro.perf.bench as bench

        monkeypatch.setattr(bench, "run_bench", lambda **kw: self.fake_report())
        monkeypatch.chdir(tmp_path)
        rc = cli.main(
            [
                "bench",
                "--quick",
                "--out",
                str(tmp_path / "b.json"),
                "--compare",
                str(tmp_path / "missing.json"),
            ]
        )
        assert rc == 2
        assert "cannot read baseline" in capsys.readouterr().err
