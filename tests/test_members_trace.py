"""Unit tests for synthetic MBone-style traces."""

import pytest

from repro.members.population import LossPopulation
from repro.members.trace import (
    MBoneTraceGenerator,
    MembershipRecord,
    read_trace,
    trace_statistics,
    write_trace,
)
from repro.members.durations import TwoClassDuration


class TestMembershipRecord:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            MembershipRecord("m", 10.0, 5.0, "Cs")

    def test_duration(self):
        record = MembershipRecord("m", 10.0, 40.0, "Cs")
        assert record.duration == 30.0


class TestGenerator:
    def test_reproducible(self):
        a = MBoneTraceGenerator(seed=3).generate(3600)
        b = MBoneTraceGenerator(seed=3).generate(3600)
        assert a == b

    def test_leave_times_clamped_to_session_end(self):
        records = MBoneTraceGenerator(seed=4).generate(1800)
        assert all(r.leave_time <= 1800 for r in records)
        assert all(r.join_time < 1800 for r in records)

    def test_arrival_rate_respected(self):
        records = MBoneTraceGenerator(arrival_rate=2.0, seed=5).generate(10_000)
        assert len(records) / 10_000 == pytest.approx(2.0, rel=0.05)

    def test_loss_population_attached(self):
        pop = LossPopulation.two_point()
        records = MBoneTraceGenerator(loss_population=pop, seed=6).generate(600)
        rates = {r.loss_rate for r in records}
        assert rates <= {0.20, 0.02}

    def test_paper_signature_mean_much_greater_than_median(self):
        """[AA97]: 'the average membership duration is 5 hours, while the
        median duration is only 6.5 minutes' — our default mixture shows
        the same mean >> median signature."""
        generator = MBoneTraceGenerator(
            duration_model=TwoClassDuration(180.0, 18_000.0, 0.85),
            arrival_rate=1.0,
            seed=7,
        )
        stats = trace_statistics(generator.generate(200_000))
        assert stats.mean_duration > 5 * stats.median_duration


class TestStatistics:
    def test_empty_trace(self):
        stats = trace_statistics([])
        assert stats.members == 0
        assert stats.max_concurrency == 0

    def test_concurrency_counting(self):
        records = [
            MembershipRecord("a", 0.0, 10.0, "Cs"),
            MembershipRecord("b", 5.0, 15.0, "Cs"),
            MembershipRecord("c", 12.0, 20.0, "Cl"),
        ]
        stats = trace_statistics(records)
        assert stats.max_concurrency == 2
        assert stats.members == 3
        assert stats.short_fraction == pytest.approx(2 / 3)

    def test_median_even_count(self):
        records = [
            MembershipRecord("a", 0.0, 10.0, "Cs"),
            MembershipRecord("b", 0.0, 20.0, "Cs"),
        ]
        assert trace_statistics(records).median_duration == 15.0


class TestRoundtrip:
    def test_write_read_roundtrip(self, tmp_path):
        records = MBoneTraceGenerator(seed=8).generate(900)
        path = tmp_path / "trace.txt"
        write_trace(records, path)
        loaded = read_trace(path)
        assert len(loaded) == len(records)
        for original, restored in zip(records, loaded):
            assert restored.member_id == original.member_id
            assert restored.join_time == pytest.approx(original.join_time, abs=1e-6)
            assert restored.leave_time == pytest.approx(original.leave_time, abs=1e-6)
            assert restored.member_class == original.member_class
