"""ShardedOneTreeServer: determinism contract, parity, DEK stitch, snapshots.

The sharding decomposition has one central promise: ``shards`` is a
*protocol* parameter (it fixes placement and cost) while ``backend`` and
``workers`` are pure *execution* parameters — any backend, any worker
count, any run must emit byte-identical payloads for the same batches.
And ``shards=1`` must reproduce the unsharded one-keytree scheme exactly
(same costs, same per-receiver decrypt counts), so the sharded server is
a strict generalization, not a different scheme.
"""

import json

import pytest

from repro.crypto.material import KeyGenerator
from repro.members.member import Member
from repro.server.onetree import OneTreeServer
from repro.server.sharded import ShardedOneTreeServer
from repro.server.snapshot import restore_server, snapshot_server


def churn_plan(rounds=4):
    """A deterministic join/leave schedule shared by all parity runs."""
    plan = [([f"m{i}" for i in range(24)], [])]
    plan.append((["x0", "x1"], ["m3", "m7", "m11"]))
    plan.append(([], ["m1", "x0", "m20"]))
    plan.append((["y0", "y1", "y2"], ["m5"]))
    return plan[: rounds]


def run_transcript(server, *, with_ciphertext=True):
    """(cost, wire-tuples, advanced) per round; closes the server."""
    transcript = []
    t = 0.0
    try:
        for joins, departures in churn_plan():
            for m in joins:
                server.join(m, t)
            for m in departures:
                server.leave(m, t)
            result = server.rekey(now=t)
            wire = []
            for ek in result.encrypted_keys:
                row = (
                    ek.wrapping_id,
                    ek.wrapping_version,
                    ek.payload_id,
                    ek.payload_version,
                )
                if with_ciphertext:
                    row = row + (ek.ciphertext,)
                wire.append(row)
            transcript.append((result.cost, tuple(wire), tuple(result.advanced)))
            t += 10.0
    finally:
        if isinstance(server, ShardedOneTreeServer):
            server.close()
    return transcript


class TestBackendInvariance:
    def sharded(self, backend, workers, **kwargs):
        return ShardedOneTreeServer(
            shards=kwargs.pop("shards", 4),
            workers=workers,
            backend=backend,
            degree=4,
            keygen=KeyGenerator(seed=41),
            **kwargs,
        )

    def test_serial_rerun_is_byte_identical(self):
        first = run_transcript(self.sharded("serial", 1))
        second = run_transcript(self.sharded("serial", 1))
        assert first == second

    @pytest.mark.parametrize(
        "backend,workers", [("thread", 2), ("process", 1), ("process", 2)]
    )
    def test_backends_are_byte_identical_to_serial(self, backend, workers):
        reference = run_transcript(self.sharded("serial", 1))
        other = run_transcript(self.sharded(backend, workers))
        assert other == reference

    def test_worker_count_never_changes_payload(self):
        reference = run_transcript(self.sharded("serial", 1, shards=8))
        for workers in (2, 8):
            got = run_transcript(self.sharded("thread", workers, shards=8))
            assert got == reference


class TestSingleShardParity:
    """``shards=1``: cost- and delivery-identical to OneTreeServer."""

    def run_costs_and_decrypts(self, server):
        costs = []
        decrypts = {}
        members = {}
        t = 0.0
        try:
            for joins, departures in churn_plan():
                regs = {m: server.join(m, t) for m in joins}
                for m in departures:
                    server.leave(m, t)
                result = server.rekey(now=t)
                costs.append(result.cost)
                for m in departures:
                    members.pop(m, None)
                index = result.index()
                for member_id, member in members.items():
                    wanted = index.closure(member.held_versions())
                    decrypts.setdefault(member_id, []).append(len(wanted))
                    member.absorb(result.encrypted_keys, index=index)
                for member_id, reg in regs.items():
                    member = Member(member_id, reg.individual_key)
                    member.absorb(result.encrypted_keys, index=index)
                    members[member_id] = member
                dek = server.group_key()
                for member in members.values():
                    assert member.holds(dek.key_id, dek.version)
                t += 10.0
        finally:
            if isinstance(server, ShardedOneTreeServer):
                server.close()
        return costs, decrypts

    @pytest.mark.parametrize("workers,backend", [(1, "serial"), (2, "thread")])
    def test_matches_one_tree_server(self, workers, backend):
        one_costs, one_decrypts = self.run_costs_and_decrypts(
            OneTreeServer(degree=4)
        )
        sharded_costs, sharded_decrypts = self.run_costs_and_decrypts(
            ShardedOneTreeServer(shards=1, workers=workers, backend=backend)
        )
        assert sharded_costs == one_costs
        assert sharded_decrypts == one_decrypts

    def test_single_shard_group_key_is_shard_root(self):
        server = ShardedOneTreeServer(shards=1)
        server.join("a", 0.0)
        server.join("b", 0.0)
        server.rekey(now=0.0)
        assert server.group_key() == server.sharded.root_key(0)


class TestDekStitch:
    def build(self, shards=4, count=16):
        server = ShardedOneTreeServer(shards=shards, degree=4)
        for i in range(count):
            server.join(f"m{i}", 0.0)
        server.rekey(now=0.0)
        return server

    def test_departure_wraps_dek_under_every_populated_root(self):
        server = self.build()
        server.leave("m3", 10.0)
        result = server.rekey(now=10.0)
        dek = server.group_key()
        dek_wraps = [
            ek for ek in result.encrypted_keys if ek.payload_id == dek.key_id
        ]
        roots = {
            server.sharded.root_key(s).key_id
            for s in server.sharded.populated_shards()
        }
        assert {ek.wrapping_id for ek in dek_wraps} == roots
        assert all(ek.payload_version == dek.version for ek in dek_wraps)

    def test_join_only_batch_wraps_dek_under_previous_dek(self):
        server = self.build()
        previous = server.group_key()
        server.join("late", 10.0)
        result = server.rekey(now=10.0)
        dek = server.group_key()
        assert dek.version == previous.version + 1
        wrappings = {
            ek.wrapping_id: ek.wrapping_version
            for ek in result.encrypted_keys
            if ek.payload_id == dek.key_id
        }
        assert wrappings[previous.key_id] == previous.version

    def test_breakdown_attributes_stitch_separately(self):
        server = self.build()
        server.leave("m1", 10.0)
        result = server.rekey(now=10.0)
        assert "group-key" in result.breakdown
        assert sum(result.breakdown.values()) == result.cost


class TestShardedSnapshot:
    """Satellite: per-shard heaps + RNG stream states round-trip so a
    restored sharded server re-derives byte-identical payloads."""

    def build_mid_scenario(self, backend="serial", workers=1):
        server = ShardedOneTreeServer(
            shards=4,
            degree=4,
            workers=workers,
            backend=backend,
            keygen=KeyGenerator(seed=42),
        )
        for i in range(20):
            server.join(f"m{i}", 0.0)
        server.rekey(now=0.0)
        # Extra churn so the per-shard attachment heaps hold stale-depth
        # and dead entries (the hard case for heap serialization).
        for m in ("m2", "m9", "m13"):
            server.leave(m, 10.0)
        server.join("w0", 10.0)
        server.rekey(now=10.0)
        return server

    def continue_run(self, target):
        target.leave("m4", 20.0)
        target.join("late1", 20.0)
        target.join("late2", 20.0)
        return target.rekey(now=20.0)

    def test_restored_server_re_derives_identical_payloads(self):
        server = self.build_mid_scenario()
        state = json.loads(json.dumps(snapshot_server(server)))
        twin = restore_server(state)
        original = self.continue_run(server)
        restored = self.continue_run(twin)
        assert restored.epoch == original.epoch
        assert restored.encrypted_keys == original.encrypted_keys
        assert [
            (ek.ciphertext) for ek in restored.encrypted_keys
        ] == [(ek.ciphertext) for ek in original.encrypted_keys]
        assert twin.group_key() == server.group_key()
        server.close()
        twin.close()

    def test_restore_crosses_backends(self):
        """A snapshot taken from a serial server restores into its saved
        backend and still re-derives the identical payload."""
        server = self.build_mid_scenario()
        state = json.loads(json.dumps(snapshot_server(server)))
        state["backend"] = "thread"
        state["workers"] = 2
        twin = restore_server(state)
        assert twin.backend == "thread"
        original = self.continue_run(server)
        restored = self.continue_run(twin)
        assert restored.encrypted_keys == original.encrypted_keys
        server.close()
        twin.close()

    def test_snapshot_preserves_shard_assignment(self):
        server = self.build_mid_scenario()
        twin = restore_server(json.loads(json.dumps(snapshot_server(server))))
        assert twin.shard_sizes() == server.shard_sizes()
        for member in server.members():
            assert twin.sharded.shard_holding(member) == (
                server.sharded.shard_holding(member)
            )
        server.close()
        twin.close()
