"""Unit tests for the one-keytree baseline server."""

import pytest

from repro.members.member import Member
from repro.server.onetree import OneTreeServer


def admit(server, ids, now=0.0):
    members = {}
    for member_id in ids:
        reg = server.join(member_id, at_time=now)
        members[member_id] = Member(member_id, reg.individual_key)
    result = server.rekey(now=now)
    for member in members.values():
        member.absorb(result.encrypted_keys)
    return members, result


class TestOneTreeServer:
    def test_group_key_is_tree_root(self):
        server = OneTreeServer()
        assert server.group_key() is server.tree.root.key
        assert server.group_key_id == server.tree.root.key.key_id

    def test_join_batch_distributes_group_key(self):
        server = OneTreeServer()
        members, result = admit(server, [f"m{i}" for i in range(20)])
        dek = server.group_key()
        for member in members.values():
            assert member.holds(dek.key_id, dek.version)
        assert result.breakdown == {"tree": result.cost}

    def test_departure_rolls_group_key_forward(self):
        server = OneTreeServer()
        members, __ = admit(server, [f"m{i}" for i in range(8)])
        old_dek = server.group_key()
        server.leave("m2", at_time=60.0)
        evicted = members.pop("m2")
        result = server.rekey(now=60.0)
        new_dek = server.group_key()
        assert new_dek.version == old_dek.version + 1
        evicted.absorb(result.encrypted_keys)
        assert not evicted.holds(new_dek.key_id, new_dek.version)
        for member in members.values():
            member.absorb(result.encrypted_keys)
            assert member.holds(new_dek.key_id, new_dek.version)

    def test_empty_rekey_is_free(self):
        server = OneTreeServer()
        admit(server, ["a"])
        result = server.rekey()
        assert result.cost == 0

    def test_batch_cost_close_to_model(self):
        """A real batch on a freshly built tree tracks Appendix A."""
        from repro.analysis.batchcost import expected_batch_cost

        server = OneTreeServer(degree=4)
        admit(server, [f"m{i}" for i in range(256)])
        for i in range(16):
            server.leave(f"m{i}")
        for i in range(16):
            server.join(f"j{i}")
        result = server.rekey()
        predicted = expected_batch_cost(256, 16, 4)
        assert result.cost == pytest.approx(predicted, rel=0.30)
