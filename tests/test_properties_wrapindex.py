"""Property-based tests (hypothesis) for the indexed delivery path.

The :class:`~repro.crypto.wrap.WrapIndex` replaced linear payload scans
in ``interest_of`` / member absorption; these properties pin the indexed
results to the naive reference implementations — including order — over
randomized batches, so the optimization can never drift semantically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.material import KeyGenerator
from repro.crypto.wrap import EncryptedKey, WrapIndex
from repro.keytree.lkh import LkhRekeyer, RekeyMessage
from repro.keytree.tree import KeyTree

KEY_IDS = [f"k{i}" for i in range(12)]

encrypted_keys = st.builds(
    EncryptedKey,
    wrapping_id=st.sampled_from(KEY_IDS),
    wrapping_version=st.integers(min_value=0, max_value=3),
    payload_id=st.sampled_from(KEY_IDS),
    payload_version=st.integers(min_value=0, max_value=3),
    ciphertext=st.just(b"opaque"),
)
batches = st.lists(encrypted_keys, max_size=60)
holdings = st.dictionaries(
    st.sampled_from(KEY_IDS), st.integers(min_value=0, max_value=3), max_size=8
)


def naive_interest(keys, held):
    """The pre-index ``interest_of``: one linear pass, order-preserving."""
    return [
        ek for ek in keys if held.get(ek.wrapping_id) == ek.wrapping_version
    ]


def naive_closure_positions(keys, held):
    """The pre-index fixed-point scan (repeated linear passes)."""
    versions = dict(held)
    wanted = set()
    progress = True
    while progress:
        progress = False
        for position, ek in enumerate(keys):
            if position in wanted:
                continue
            if versions.get(ek.wrapping_id) == ek.wrapping_version and (
                versions.get(ek.payload_id, -1) < ek.payload_version
            ):
                wanted.add(position)
                versions[ek.payload_id] = ek.payload_version
                progress = True
    return wanted


@settings(max_examples=200, deadline=None)
@given(keys=batches, held=holdings)
def test_interest_of_matches_naive_linear_filter(keys, held):
    message = RekeyMessage(group="g", epoch=1, encrypted_keys=list(keys))
    assert message.interest_of(held) == naive_interest(keys, held)


@settings(max_examples=200, deadline=None)
@given(keys=batches, held=holdings)
def test_closure_is_sound_and_covers_direct_matches(keys, held):
    """On arbitrary synthetic batches the closure must (a) select only
    wraps justified by a held or learned key, (b) include every direct
    match that teaches something new, and (c) leave the holdings alone.
    (Exact equivalence with the naive fixed-point scan is asserted on
    genuine rekey payloads below — synthetic batches can express
    version-upgrade races where the naive scan is order-dependent.)"""
    index = WrapIndex(keys)
    before = dict(held)
    selected = index.closure(held)
    positions = {pos for pos, _ in selected}
    assert held == before, "closure must not mutate the caller's holdings"
    # (a) every selected wrap is openable with a held key or the payload
    # of another selected wrap, teaches a strictly newer version than the
    # holdings started with, and no (payload, version) is delivered twice.
    justifying = set(held) | {ek.payload_id for _, ek in selected}
    delivered = set()
    for _, ek in selected:
        assert ek.wrapping_id in justifying
        assert ek.payload_version > before.get(ek.payload_id, -1)
        assert ek.payload_handle not in delivered
        delivered.add(ek.payload_handle)
    # (b) direct matches that deliver something new are always included.
    for pos, ek in index.direct_matches(held):
        if ek.payload_version > before.get(ek.payload_id, -1):
            assert any(
                p == pos or other.payload_id == ek.payload_id
                for p, other in selected
            )


@settings(max_examples=25, deadline=None)
@given(
    count=st.integers(min_value=2, max_value=50),
    degree=st.integers(min_value=2, max_value=5),
    data=st.data(),
)
def test_closure_matches_naive_fixed_point_on_real_messages(
    count, degree, data
):
    """Indexed closure == the naive repeated-linear-pass fixed point on
    genuine batched-rekey payloads, position for position."""
    tree = KeyTree(degree=degree, keygen=KeyGenerator(8))
    rekeyer = LkhRekeyer(tree)
    members = [f"m{i}" for i in range(count)]
    rekeyer.rekey_batch(joins=[(m, None) for m in members])
    held = {
        m: {n.key.key_id: n.key.version for n in tree.path_of(m)}
        for m in members
    }
    k = data.draw(st.integers(min_value=1, max_value=count - 1))
    victims = data.draw(
        st.lists(
            st.sampled_from(members), min_size=k, max_size=k, unique=True
        )
    )
    joiners = [(f"j{i}", None) for i in range(k)]
    message = rekeyer.rekey_batch(joins=joiners, departures=victims)
    index = message.index()
    for m in members:
        if m in victims:
            continue
        positions = {pos for pos, _ in index.closure(held[m])}
        assert positions == naive_closure_positions(
            message.encrypted_keys, held[m]
        )


@settings(max_examples=200, deadline=None)
@given(keys=batches, held=holdings)
def test_direct_matches_preserve_message_order(keys, held):
    index = WrapIndex(keys)
    positions = [pos for pos, _ in index.direct_matches(held)]
    assert positions == sorted(positions)


@settings(max_examples=25, deadline=None)
@given(
    count=st.integers(min_value=2, max_value=50),
    degree=st.integers(min_value=2, max_value=5),
    data=st.data(),
)
def test_interest_of_matches_naive_on_real_rekey_messages(count, degree, data):
    """Same equivalence on genuine batched-rekey payloads (chained wraps,
    version bumps, split-created joints) rather than synthetic ones."""
    tree = KeyTree(degree=degree, keygen=KeyGenerator(5))
    rekeyer = LkhRekeyer(tree)
    members = [f"m{i}" for i in range(count)]
    rekeyer.rekey_batch(joins=[(m, None) for m in members])
    held = {
        m: {n.key.key_id: n.key.version for n in tree.path_of(m)}
        for m in members
    }
    k = data.draw(st.integers(min_value=1, max_value=count - 1))
    victims = data.draw(
        st.lists(
            st.sampled_from(members), min_size=k, max_size=k, unique=True
        )
    )
    joiners = [(f"j{i}", None) for i in range(k)]
    message = rekeyer.rekey_batch(joins=joiners, departures=victims)
    for m in members:
        if m in victims:
            continue
        assert message.interest_of(held[m]) == naive_interest(
            message.encrypted_keys, held[m]
        )
