"""Unit and behavioural tests for the three rekey transport protocols."""

import pytest

from repro.crypto.material import KeyGenerator
from repro.crypto.wrap import wrap_key
from repro.network.channel import MulticastChannel
from repro.network.loss import BernoulliLoss
from repro.transport.fec import ProactiveFecProtocol
from repro.transport.multisend import MultiSendProtocol
from repro.transport.session import TransportTask
from repro.transport.wka_bkr import WkaBkrProtocol


def make_task(key_count, interest):
    """A task over ``key_count`` synthetic encrypted keys."""
    gen = KeyGenerator(31)
    wrapping = gen.generate("w")
    keys = [wrap_key(wrapping, gen.generate(f"k{i}")) for i in range(key_count)]
    return TransportTask(keys=keys, interest={r: set(w) for r, w in interest.items()})


def make_channel(losses):
    channel = MulticastChannel(seed=17)
    for receiver, rate in losses.items():
        channel.subscribe(receiver, BernoulliLoss(rate))
    return channel


PROTOCOLS = [
    MultiSendProtocol(keys_per_packet=4, replication=1),
    WkaBkrProtocol(keys_per_packet=4),
    ProactiveFecProtocol(keys_per_packet=4, block_size=3, proactivity=1.0),
]


@pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda p: p.name)
class TestCommonBehaviour:
    def test_lossless_delivery_single_round(self, protocol):
        task = make_task(10, {"a": range(10), "b": range(5)})
        channel = make_channel({"a": 0.0, "b": 0.0})
        result = protocol.run(task, channel)
        assert result.satisfied
        assert result.rounds == 1

    def test_lossy_delivery_completes(self, protocol):
        task = make_task(20, {f"r{i}": range(20) for i in range(10)})
        channel = make_channel({f"r{i}": 0.3 for i in range(10)})
        result = protocol.run(task, channel)
        assert result.satisfied
        assert result.keys_sent >= 20

    def test_empty_interest_is_free_of_rounds(self, protocol):
        task = make_task(5, {})
        channel = make_channel({})
        result = protocol.run(task, channel)
        assert result.satisfied

    def test_heterogeneous_losses_complete(self, protocol):
        interest = {f"r{i}": range(12) for i in range(6)}
        task = make_task(12, interest)
        losses = {f"r{i}": (0.4 if i < 2 else 0.02) for i in range(6)}
        result = protocol.run(task, make_channel(losses))
        assert result.satisfied


class TestMultiSend:
    def test_replication_multiplies_first_round(self):
        task = make_task(8, {"a": range(8)})
        channel = make_channel({"a": 0.0})
        single = MultiSendProtocol(keys_per_packet=4, replication=1).run(
            task, channel
        )
        task2 = make_task(8, {"a": range(8)})
        double = MultiSendProtocol(keys_per_packet=4, replication=3).run(
            task2, make_channel({"a": 0.0})
        )
        assert double.keys_sent == 3 * single.keys_sent

    def test_rejects_zero_replication(self):
        with pytest.raises(ValueError):
            MultiSendProtocol(replication=0)


class TestWkaBkr:
    def test_lossless_sends_each_key_once(self):
        task = make_task(10, {"a": range(10), "b": range(10)})
        result = WkaBkrProtocol(keys_per_packet=4).run(
            task, make_channel({"a": 0.0, "b": 0.0})
        )
        assert result.keys_sent == 10

    def test_high_loss_audience_triggers_replication(self):
        interest = {f"r{i}": range(4) for i in range(64)}
        task = make_task(4, interest)
        channel = make_channel({f"r{i}": 0.25 for i in range(64)})
        result = WkaBkrProtocol(keys_per_packet=4).run(task, channel)
        # First round alone already carries >1 copy of each key.
        assert result.keys_sent > 4

    def test_keys_without_audience_are_never_sent(self):
        task = make_task(10, {"a": {0, 1}})
        result = WkaBkrProtocol(keys_per_packet=4).run(task, make_channel({"a": 0.0}))
        assert result.keys_sent == 2

    def test_invalid_packing_rejected(self):
        with pytest.raises(ValueError):
            WkaBkrProtocol(packing="widthwise")

    def test_dfs_packing_also_completes(self):
        interest = {f"r{i}": range(16) for i in range(8)}
        task = make_task(16, interest)
        channel = make_channel({f"r{i}": 0.2 for i in range(8)})
        result = WkaBkrProtocol(keys_per_packet=4, packing="dfs").run(task, channel)
        assert result.satisfied

    def test_beats_multisend_on_real_rekey_payload(self):
        """The [SZJ02] claim: WKA-BKR has lower bandwidth overhead than
        multi-send in most loss scenarios.  The advantage comes from the
        rekey payload's *sparseness* (per-key audiences shrink with tree
        depth), so the comparison uses a real batched-LKH payload, not a
        uniform-interest blob."""
        import random

        from repro.keytree.lkh import LkhRekeyer
        from repro.keytree.tree import KeyTree
        from repro.transport.session import build_task

        def scenario(seed, protocol):
            tree = KeyTree(degree=4, keygen=KeyGenerator(seed))
            rekeyer = LkhRekeyer(tree)
            members = [f"m{i}" for i in range(256)]
            rekeyer.rekey_batch(joins=[(m, None) for m in members])
            held = {
                m: {n.key.key_id: n.key.version for n in tree.path_of(m)}
                for m in members
            }
            victims = random.Random(seed).sample(members, 16)
            message = rekeyer.rekey_batch(departures=victims)
            survivors = [m for m in members if m not in victims]
            task = build_task(message, {m: held[m] for m in survivors})
            channel = MulticastChannel(seed=seed + 100)
            for m in survivors:
                channel.subscribe(m, BernoulliLoss(0.15))
            return protocol.run(task, channel).keys_sent

        wka = sum(scenario(s, WkaBkrProtocol(keys_per_packet=8)) for s in range(5))
        multi = sum(
            scenario(s, MultiSendProtocol(keys_per_packet=8, replication=2))
            for s in range(5)
        )
        assert wka < multi


class TestProactiveFec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProactiveFecProtocol(block_size=0)
        with pytest.raises(ValueError):
            ProactiveFecProtocol(proactivity=0.5)

    def test_proactive_parity_counted(self):
        task = make_task(8, {"a": range(8)})
        result = ProactiveFecProtocol(
            keys_per_packet=4, block_size=2, proactivity=1.5
        ).run(task, make_channel({"a": 0.0}))
        assert result.parity_packets == 1  # ceil(0.5 * 2) per block, 1 block... 2 blocks? see below
        # 8 keys / 4 per packet = 2 payload packets = 1 block of 2 -> 1 parity
        assert result.satisfied

    def test_parity_recovers_block_without_direct_reception(self):
        """A receiver that got any k packets of a block is satisfied even
        if its interested payload packet was lost."""
        task = make_task(4, {"a": range(4)})
        protocol = ProactiveFecProtocol(
            keys_per_packet=2, block_size=2, proactivity=2.0
        )
        channel = make_channel({"a": 0.5})
        result = protocol.run(task, channel)
        assert result.satisfied

    def test_cost_grows_with_worst_receiver(self):
        """One high-loss receiver inflates the whole block's parity — the
        mechanism Section 4 relieves."""

        def cost(high_loss_receivers, seed):
            interest = {f"r{i}": range(32) for i in range(20)}
            task = make_task(32, interest)
            channel = MulticastChannel(seed=seed)
            for i in range(20):
                rate = 0.4 if i < high_loss_receivers else 0.02
                channel.subscribe(f"r{i}", BernoulliLoss(rate))
            protocol = ProactiveFecProtocol(keys_per_packet=4, block_size=4)
            return protocol.run(task, channel).keys_sent

        mixed = sum(cost(4, s) for s in range(5))
        clean = sum(cost(0, s) for s in range(5))
        assert mixed > clean
