"""Unit tests for deferred wrapping and the wrap-mode controls."""

import pytest

from repro.crypto.material import KeyGenerator
from repro.crypto.wrap import (
    LazyEncryptedKey,
    deferred_wraps,
    set_wrap_mode,
    unwrap_key,
    wrap_key,
    wrap_mode,
)


@pytest.fixture
def keys():
    gen = KeyGenerator(9)
    return gen.generate("wrapping"), gen.generate("payload")


class TestWrapMode:
    def test_default_mode_is_eager(self):
        assert wrap_mode() == "eager"

    def test_set_wrap_mode_returns_previous(self):
        assert set_wrap_mode("deferred") == "eager"
        assert set_wrap_mode("eager") == "deferred"

    def test_set_wrap_mode_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_wrap_mode("sometimes")

    def test_context_manager_restores_mode(self):
        with deferred_wraps():
            assert wrap_mode() == "deferred"
            with deferred_wraps(enabled=False):
                assert wrap_mode() == "eager"
            assert wrap_mode() == "deferred"
        assert wrap_mode() == "eager"

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with deferred_wraps():
                raise RuntimeError("boom")
        assert wrap_mode() == "eager"


class TestLazyEncryptedKey:
    def test_deferred_wrap_returns_lazy_record(self, keys):
        wrapping, payload = keys
        with deferred_wraps():
            ek = wrap_key(wrapping, payload)
        assert isinstance(ek, LazyEncryptedKey)
        assert not ek.materialized

    def test_identity_fields_available_without_materializing(self, keys):
        wrapping, payload = keys
        with deferred_wraps():
            ek = wrap_key(wrapping, payload)
        assert ek.wrapping_handle == wrapping.handle
        assert ek.payload_handle == payload.handle
        assert not ek.materialized

    def test_ciphertext_materializes_once_and_matches_eager(self, keys):
        wrapping, payload = keys
        eager = wrap_key(wrapping, payload)
        with deferred_wraps():
            lazy = wrap_key(wrapping, payload)
        blob = lazy.ciphertext
        assert lazy.materialized
        assert blob == eager.ciphertext
        assert lazy.ciphertext is blob  # cached, not recomputed

    def test_unwrap_works_on_lazy_record(self, keys):
        wrapping, payload = keys
        with deferred_wraps():
            ek = wrap_key(wrapping, payload)
        assert unwrap_key(wrapping, ek) == payload

    def test_lazy_equals_eager_and_hashes_alike(self, keys):
        wrapping, payload = keys
        eager = wrap_key(wrapping, payload)
        with deferred_wraps():
            lazy = wrap_key(wrapping, payload)
        assert lazy == eager
        assert eager == lazy  # reflected dataclass comparison defers to us
        assert hash(lazy) == hash(eager)
        assert lazy in {eager}

    def test_lazy_not_equal_to_different_wrap(self, keys):
        wrapping, payload = keys
        other = KeyGenerator(10).generate("other")
        with deferred_wraps():
            lazy = wrap_key(wrapping, payload)
            different = wrap_key(other, payload)
        assert lazy != different
        assert lazy != object()
