"""Unit tests for the shared key-server lifecycle."""

import pytest

from repro.server.base import BatchResult
from repro.server.onetree import OneTreeServer


@pytest.fixture
def server():
    return OneTreeServer(degree=4)


class TestJoinLeaveLifecycle:
    def test_join_returns_registration(self, server):
        reg = server.join("a", at_time=5.0)
        assert reg.member_id == "a"
        assert reg.join_time == 5.0
        assert reg.individual_key.key_id == "member:a"

    def test_joiner_admitted_only_at_rekey(self, server):
        server.join("a")
        assert "a" not in server
        server.rekey()
        assert "a" in server
        assert server.size == 1

    def test_duplicate_join_rejected(self, server):
        server.join("a")
        with pytest.raises(ValueError):
            server.join("a")
        server.rekey()
        with pytest.raises(ValueError):
            server.join("a")

    def test_leave_unknown_rejected(self, server):
        with pytest.raises(KeyError):
            server.leave("ghost")

    def test_double_leave_rejected(self, server):
        server.join("a")
        server.rekey()
        server.leave("a")
        with pytest.raises(ValueError):
            server.leave("a")

    def test_join_then_leave_within_period_vanishes(self, server):
        """A member that never survived to a rekey point gets no keys and
        costs nothing."""
        server.join("flash")
        server.leave("flash")
        result = server.rekey()
        assert result.cost == 0
        assert "flash" not in server
        assert result.joined == []
        assert result.departed == []

    def test_rejoin_after_leave(self, server):
        server.join("a")
        server.rekey()
        server.leave("a")
        server.rekey()
        server.join("a")
        server.rekey()
        assert "a" in server

    def test_epochs_increase(self, server):
        first = server.rekey()
        second = server.rekey()
        assert second.epoch == first.epoch + 1

    def test_members_listing(self, server):
        for m in ("a", "b", "c"):
            server.join(m)
        server.rekey()
        assert sorted(server.members()) == ["a", "b", "c"]


class TestBatchResult:
    def test_extend_tracks_breakdown(self):
        result = BatchResult(epoch=1, time=0.0)
        result.extend("part", [object(), object()])  # type: ignore[list-item]
        result.extend("part", [object()])  # type: ignore[list-item]
        result.extend("other", [])
        assert result.breakdown == {"part": 3, "other": 0}
        assert result.cost == 3
