"""Tests for the multi-group receiver-bandwidth experiment (§4.4)."""

import pytest

from repro.experiments.receiver_bandwidth import (
    receiver_bandwidth,
    receiver_bandwidth_series,
)


class TestReceiverBandwidth:
    def test_server_cost_is_layout_independent(self):
        """Both layouts move the same keys out of the server."""
        result = receiver_bandwidth(alpha=0.3)
        assert result.server_cost > 0
        # Per-class heard keys differ, but they derive from one server cost.
        assert result.shared_group["low"] == pytest.approx(
            result.server_cost * (1 - 0.02)
        )

    def test_per_tree_groups_reduce_low_loss_receiver_bandwidth(self):
        for alpha in (0.1, 0.3, 0.5, 0.8):
            result = receiver_bandwidth(alpha=alpha)
            assert result.per_tree_groups["low"] < result.shared_group["low"]

    def test_high_loss_receivers_also_save(self):
        result = receiver_bandwidth(alpha=0.2)
        assert result.per_tree_groups["high"] < result.shared_group["high"]

    def test_homogeneous_population_has_single_scope(self):
        result = receiver_bandwidth(alpha=0.0)
        assert result.per_tree_groups["low"] == pytest.approx(
            result.shared_group["low"]
        )
        assert "high" not in result.shared_group

    def test_fairness_low_loss_class_sheds_redundant_traffic(self):
        """Inter-receiver fairness (the paper's phrasing: 'the low loss
        members will not receive redundant keys that are unnecessary to
        them'): with per-tree groups a low-loss receiver's heard traffic
        is exactly its own tree's (plus the DEK wraps) — a large cut from
        the shared-scope firehose that grows with the high-loss share."""
        cut_03 = 1 - (
            receiver_bandwidth(alpha=0.3).per_tree_groups["low"]
            / receiver_bandwidth(alpha=0.3).shared_group["low"]
        )
        cut_07 = 1 - (
            receiver_bandwidth(alpha=0.7).per_tree_groups["low"]
            / receiver_bandwidth(alpha=0.7).shared_group["low"]
        )
        assert cut_03 > 0.3
        assert cut_07 > cut_03

    def test_series_shape(self):
        series = receiver_bandwidth_series(alpha_values=[0.1, 0.5])
        assert set(series.columns) == {
            "server-cost",
            "shared-group",
            "per-tree-groups",
            "receiver-saving-%",
        }
        assert all(s > 0 for s in series.column("receiver-saving-%"))
