"""Trace file round-trip, validation, and the summarizer."""

import json

import pytest

import repro.obs as obs
from repro.obs.report import build_summary, format_summary


def observed_run():
    """A tiny synthetic observed run with every record kind."""
    with obs.observe(clock=lambda: 7.0) as bundle:
        with bundle.tracer.span("epoch", epoch=1) as epoch:
            epoch.event("fault-window", kind="blackout", start=0.0, end=10.0)
            with bundle.tracer.span("rekey"):
                pass
            bundle.tracer.add_span("shard", wall_s=0.4, shard=0, keys=30)
            bundle.tracer.add_span("shard", wall_s=0.1, shard=1, keys=10)
        bundle.events.emit("epoch", epoch=1, joins=2, departures=1, cost=12)
        bundle.registry.observe("server.batch_cost", 12)
        bundle.registry.observe("epoch.group_size", 100)
        bundle.registry.observe("epoch.departures", 1)
        bundle.registry.observe("receiver.keys_learned", 3)
        bundle.registry.observe("receiver.interest_keys", 3)
        bundle.registry.set_gauge("server.degree", 4)
    return bundle


def test_write_read_validate_roundtrip(tmp_path):
    bundle = observed_run()
    path = tmp_path / "trace.jsonl"
    count = obs.write_trace(bundle, path)
    records = obs.read_trace(path)
    assert len(records) == count
    counts = obs.validate_trace_records(records)
    assert counts == {"header": 1, "span": 4, "event": 1, "metrics": 1}
    # JSONL: every line parses standalone.
    for line in path.read_text().splitlines():
        json.loads(line)


def test_write_trace_is_atomic(tmp_path):
    bundle = observed_run()
    path = tmp_path / "trace.jsonl"
    obs.write_trace(bundle, path)
    assert not list(tmp_path.glob("*.tmp"))


def test_validate_rejects_bad_header_and_unknown_kind(tmp_path):
    with pytest.raises(ValueError, match="header"):
        obs.validate_trace_records([{"record": "span"}])
    good_header = {"record": "header", "schema": 1, "kind": "repro-trace"}
    with pytest.raises(ValueError, match="unknown record kind"):
        obs.validate_trace_records([good_header, {"record": "mystery"}])
    with pytest.raises(ValueError, match="schema"):
        obs.validate_trace_records(
            [{"record": "header", "schema": 99, "kind": "repro-trace"}]
        )


def test_summary_reports_spans_shards_and_analytic(tmp_path):
    bundle = observed_run()
    path = tmp_path / "trace.jsonl"
    obs.write_trace(bundle, path)
    summary = build_summary(obs.read_trace(path))

    assert summary["spans"] == 4
    assert summary["events"] == {"epoch": 1}
    names = [row["name"] for row in summary["top_spans"]]
    assert "epoch" in names and "shard" in names

    shard_rows = {row["shard"]: row for row in summary["shards"]}
    assert shard_rows["0"]["keys"] == 30
    assert shard_rows["1"]["keys"] == 10
    # shard 0 did 0.4s of 0.25s mean -> imbalance 1.6
    assert summary["shard_imbalance"] == pytest.approx(1.6, abs=0.01)

    assert summary["receiver"]["deliveries"] == 1
    assert summary["receiver"]["mean_decrypts_per_delivery"] == 3

    analytic = summary["analytic"]
    assert analytic["degree"] == 4
    assert analytic["observed_mean_batch_cost"] == 12
    assert analytic["predicted_ne"] > 0

    text = format_summary(summary)
    assert "top spans" in text
    assert "imbalance" in text
    assert "Ne(N, L)" in text


def test_summary_top_limit():
    records = [{"record": "header", "schema": 1, "kind": "repro-trace"}]
    for i in range(20):
        records.append(
            {
                "record": "span",
                "span_id": i + 1,
                "parent_id": None,
                "name": f"s{i}",
                "wall_s": 0.001 * (i + 1),
                "sim_start": None,
                "sim_end": None,
                "attributes": {},
                "events": [],
            }
        )
    summary = build_summary(records, top=5)
    assert len(summary["top_spans"]) == 5
    # Sorted by total wall time descending.
    assert summary["top_spans"][0]["name"] == "s19"
