"""The per-receiver epoch state machine and measured recovery events."""

import pytest

from repro.faults.recovery import (
    RecoveryEvent,
    SyncState,
    SyncTracker,
    latency_summary,
)


class TestSyncTracker:
    def test_admit_and_forget(self):
        tracker = SyncTracker()
        tracker.admit("m", epoch=3)
        assert "m" in tracker
        assert tracker.state_of("m") is SyncState.IN_SYNC
        tracker.forget("m")
        assert "m" not in tracker
        tracker.forget("m")  # idempotent
        with pytest.raises(KeyError):
            tracker.state_of("m")

    def test_lagging_then_delivered_returns_to_sync(self):
        tracker = SyncTracker()
        tracker.admit("m", epoch=1)
        tracker.mark_lagging("m", epoch=2, now=60.0)
        assert tracker.state_of("m") is SyncState.LAGGING
        tracker.mark_delivered("m", epoch=2)
        assert tracker.state_of("m") is SyncState.IN_SYNC

    def test_multicast_cannot_repair_out_of_sync(self):
        tracker = SyncTracker()
        tracker.admit("m", epoch=1)
        tracker.mark_out_of_sync("m", epoch=2, now=60.0)
        tracker.mark_delivered("m", epoch=3)
        assert tracker.state_of("m") is SyncState.OUT_OF_SYNC
        tracker.mark_lagging("m", epoch=3, now=70.0)
        assert tracker.state_of("m") is SyncState.OUT_OF_SYNC

    def test_recovery_event_measures_from_first_desync(self):
        tracker = SyncTracker()
        tracker.admit("m", epoch=1)
        # Went lagging at t=60 on epoch 2, abandoned at t=65, recovered at
        # t=120 after the server processed epoch 4.
        tracker.mark_lagging("m", epoch=2, now=60.0)
        tracker.mark_out_of_sync("m", epoch=2, now=65.0)
        event = tracker.mark_recovered("m", epoch=4, now=120.0, keys_sent=5)
        assert event.latency == pytest.approx(60.0)  # 120 - 60 (lagging)
        assert event.epochs_missed == 3  # epochs 2, 3, 4
        assert event.keys_sent == 5
        assert tracker.state_of("m") is SyncState.IN_SYNC
        assert tracker.events == [event]

    def test_out_of_sync_listing_and_counts(self):
        tracker = SyncTracker()
        for member in ("a", "b", "c"):
            tracker.admit(member, epoch=1)
        tracker.mark_out_of_sync("b", epoch=2, now=1.0)
        tracker.mark_lagging("c", epoch=2, now=1.0)
        assert tracker.out_of_sync() == ["b"]
        assert tracker.counts() == {
            "in-sync": 1, "lagging": 1, "out-of-sync": 1
        }


class TestLatencySummary:
    def test_empty(self):
        assert latency_summary([]) == {"count": 0}

    def test_distribution(self):
        events = [
            RecoveryEvent("m0", desynced_at=0.0, recovered_at=30.0,
                          epochs_missed=1, keys_sent=3),
            RecoveryEvent("m1", desynced_at=0.0, recovered_at=60.0,
                          epochs_missed=2, keys_sent=5),
            RecoveryEvent("m2", desynced_at=10.0, recovered_at=100.0,
                          epochs_missed=4, keys_sent=4),
        ]
        summary = latency_summary(events)
        assert summary["count"] == 3
        assert summary["latency_min_s"] == 30.0
        assert summary["latency_max_s"] == 90.0
        assert summary["latency_mean_s"] == pytest.approx(60.0)
        assert summary["latency_p50_s"] == 60.0
        assert summary["latency_p99_s"] == 90.0
        assert summary["keys_total"] == 12
        assert summary["epochs_missed_max"] == 4
