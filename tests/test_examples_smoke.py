"""Smoke-run every script in ``examples/``.

Examples are the first code a new user executes; a broken one is a broken
front door.  Each script runs in a subprocess with ``REPRO_EXAMPLE_FAST=1``
(the documented seconds-scale switch) and must exit 0 with non-trivial
output and a clean stderr.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script, tmp_path):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_FAST"] = "1"
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,  # examples must not depend on the repo cwd
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited {completed.returncode}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} produced no output"
    assert not completed.stderr.strip(), (
        f"{script.name} wrote to stderr:\n{completed.stderr}"
    )
