"""Unit tests for arrival processes."""

import random

import pytest

from repro.members.arrivals import DeterministicArrivals, PoissonArrivals


class TestPoissonArrivals:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0)

    def test_times_sorted_and_within_horizon(self):
        rng = random.Random(5)
        times = list(PoissonArrivals(2.0).times(rng, 100.0))
        assert times == sorted(times)
        assert all(0 <= t < 100.0 for t in times)

    def test_rate_converges(self):
        rng = random.Random(6)
        times = list(PoissonArrivals(3.0).times(rng, 10_000.0))
        assert len(times) / 10_000.0 == pytest.approx(3.0, rel=0.05)

    def test_reproducible_with_seed(self):
        a = list(PoissonArrivals(1.0).times(random.Random(7), 50.0))
        b = list(PoissonArrivals(1.0).times(random.Random(7), 50.0))
        assert a == b


class TestDeterministicArrivals:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            DeterministicArrivals(0)

    def test_evenly_spaced(self):
        times = list(DeterministicArrivals(10.0).times(random.Random(0), 45.0))
        assert times == [10.0, 20.0, 30.0, 40.0]

    def test_horizon_exclusive(self):
        times = list(DeterministicArrivals(10.0).times(random.Random(0), 30.0))
        assert times == [10.0, 20.0]
