"""Tests for key-tree serialization and server snapshot/restore."""

import json

import pytest

from repro.crypto.material import KeyGenerator
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.serialize import tree_from_dict, tree_to_dict
from repro.keytree.tree import KeyTree
from repro.members.durations import SHORT_CLASS
from repro.members.member import Member
from repro.server.losshomog import LossHomogenizedServer
from repro.server.onetree import OneTreeServer
from repro.server.snapshot import restore_server, snapshot_server
from repro.server.twopartition import TwoPartitionServer

from tests.helpers import populate


class TestTreeSerialization:
    def build(self):
        tree = KeyTree(degree=3, keygen=KeyGenerator(61))
        rekeyer = LkhRekeyer(tree)
        populate(rekeyer, 25)
        rekeyer.rekey_batch(departures=["m1", "m7"])
        return tree

    def test_roundtrip_is_json_compatible(self):
        tree = self.build()
        data = json.loads(json.dumps(tree_to_dict(tree)))
        restored = tree_from_dict(data)
        assert restored.size == tree.size
        assert sorted(restored.members()) == sorted(tree.members())

    def test_roundtrip_preserves_keys_and_versions(self):
        tree = self.build()
        restored = tree_from_dict(tree_to_dict(tree))
        for node in tree.iter_nodes():
            twin = restored.node(node.node_id)
            assert twin.key == node.key

    def test_restored_tree_keeps_balancing_behaviour(self):
        tree = self.build()
        restored = tree_from_dict(tree_to_dict(tree))
        for i in range(20):
            restored.add_member(f"new{i}")
        restored.validate()
        assert restored.is_balanced(slack=2)

    def test_node_ids_never_collide_after_restore(self):
        tree = self.build()
        restored = tree_from_dict(tree_to_dict(tree))
        existing = {n.node_id for n in restored.iter_nodes()}
        # Force splits: each new internal node id must be fresh.
        for i in range(30):
            restored.add_member(f"post{i}")
        fresh = {n.node_id for n in restored.iter_nodes()} - existing
        assert all(node_id not in existing for node_id in fresh)
        restored.validate()

    def test_restored_tree_attaches_joins_identically(self):
        """The attachment heaps round-trip verbatim.

        Re-seeding them on restore consumed fresh generator draws, so a
        restored tree broke ties differently from the live one and joins
        landed in different slots — which the crash-and-restore fault
        path (replayed batch must re-derive the identical payload)
        relies on never happening.
        """
        tree = self.build()
        # Extra churn so the heaps hold stale-depth and dead entries.
        for i in range(7):
            tree.add_member(f"extra{i}")
        for member in ("m3", "m12", "extra2"):
            tree.remove_member(member)
        restored = tree_from_dict(json.loads(json.dumps(tree_to_dict(tree))))
        for i in range(15):
            live = tree.add_member(f"twin{i}")
            twin = restored.add_member(f"twin{i}")
            assert twin.node_id == live.node_id
            assert twin.parent.node_id == live.parent.node_id
        assert {n.node_id for n in restored.iter_nodes()} == {
            n.node_id for n in tree.iter_nodes()
        }
        restored.validate()

    def test_unknown_format_rejected(self):
        tree = self.build()
        data = tree_to_dict(tree)
        data["format"] = 99
        with pytest.raises(ValueError):
            tree_from_dict(data)


def drive(server, members, result):
    for member in members.values():
        member.absorb(result.encrypted_keys)


def populate_server(server, count=12, **attrs):
    members = {}
    for i in range(count):
        reg = server.join(f"m{i}", at_time=0.0, **attrs)
        members[f"m{i}"] = Member(f"m{i}", reg.individual_key)
    result = server.rekey(now=60.0)
    drive(server, members, result)
    return members


SERVER_BUILDERS = {
    "one": lambda: OneTreeServer(degree=4),
    "qt": lambda: TwoPartitionServer(mode="qt", s_period=300.0),
    "tt": lambda: TwoPartitionServer(mode="tt", s_period=300.0),
    "losshomog": lambda: LossHomogenizedServer(class_rates=(0.2, 0.02)),
}


def join_attrs(kind):
    if kind == "losshomog":
        return {"loss_rate": 0.02}
    return {}


class TestServerSnapshot:
    @pytest.mark.parametrize("kind", list(SERVER_BUILDERS))
    def test_roundtrip_is_json_compatible(self, kind):
        server = SERVER_BUILDERS[kind]()
        populate_server(server, **join_attrs(kind))
        state = json.loads(json.dumps(snapshot_server(server)))
        restored = restore_server(state)
        assert restored.size == server.size
        assert sorted(restored.members()) == sorted(server.members())
        assert restored.group_key() == server.group_key()

    @pytest.mark.parametrize("kind", list(SERVER_BUILDERS))
    def test_restored_server_continues_identically(self, kind):
        """The gold test: run the same post-snapshot operations on the
        original and the restored server — byte-identical batches."""
        server = SERVER_BUILDERS[kind]()
        members = populate_server(server, **join_attrs(kind))
        state = snapshot_server(server)
        restored = restore_server(state)

        def continue_run(target):
            target.leave("m2", at_time=120.0)
            target.join("late", at_time=125.0, **join_attrs(kind))
            return target.rekey(now=120.0)

        original_batch = continue_run(server)
        restored_batch = continue_run(restored)
        assert original_batch.epoch == restored_batch.epoch
        assert original_batch.encrypted_keys == restored_batch.encrypted_keys
        assert server.group_key() == restored.group_key()

    def test_members_survive_a_server_restart(self):
        """Members keep decrypting across a snapshot/restore boundary
        without any re-registration."""
        server = SERVER_BUILDERS["tt"]()
        members = populate_server(server)
        restored = restore_server(snapshot_server(server))
        restored.leave("m0", at_time=120.0)
        evicted = members.pop("m0")
        result = restored.rekey(now=120.0)
        dek = restored.group_key()
        for member in members.values():
            member.absorb(result.encrypted_keys)
            assert member.holds(dek.key_id, dek.version)
        evicted.absorb(result.encrypted_keys)
        assert not evicted.holds(dek.key_id, dek.version)

    def test_pending_batch_survives_restart(self):
        server = SERVER_BUILDERS["one"]()
        populate_server(server)
        server.join("pending-joiner", at_time=70.0)
        server.leave("m1", at_time=75.0)
        restored = restore_server(snapshot_server(server))
        result = restored.rekey(now=120.0)
        assert result.joined == ["pending-joiner"]
        assert result.departed == ["m1"]

    def test_migration_clocks_survive_restart(self):
        server = SERVER_BUILDERS["tt"]()
        populate_server(server)  # entered S at t=60
        restored = restore_server(snapshot_server(server))
        result = restored.rekey(now=360.0)  # s_period=300 reached
        assert sorted(result.migrated) == sorted(f"m{i}" for i in range(12))

    def test_pt_class_map_survives_restart(self):
        server = TwoPartitionServer(mode="pt")
        server.join("s", member_class=SHORT_CLASS)
        server.rekey(now=0.0)
        restored = restore_server(snapshot_server(server))
        assert restored.in_s_partition("s")

    def test_unknown_format_rejected(self):
        server = SERVER_BUILDERS["one"]()
        state = snapshot_server(server)
        state["format"] = 42
        with pytest.raises(ValueError):
            restore_server(state)

    def test_unsupported_server_rejected(self):
        from repro.server.base import GroupKeyServer

        with pytest.raises(TypeError):
            snapshot_server(GroupKeyServer())
