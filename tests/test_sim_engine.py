"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.engine import EventLoop


class TestEventLoop:
    def test_runs_events_in_time_order(self):
        loop = EventLoop()
        log = []
        loop.schedule(3.0, lambda: log.append("c"))
        loop.schedule(1.0, lambda: log.append("a"))
        loop.schedule(2.0, lambda: log.append("b"))
        loop.run_until(10.0)
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_keep_insertion_order(self):
        loop = EventLoop()
        log = []
        for tag in "xyz":
            loop.schedule(5.0, lambda t=tag: log.append(t))
        loop.run_until(5.0)
        assert log == ["x", "y", "z"]

    def test_horizon_bounds_execution(self):
        loop = EventLoop()
        log = []
        loop.schedule(1.0, lambda: log.append(1))
        loop.schedule(20.0, lambda: log.append(20))
        processed = loop.run_until(10.0)
        assert processed == 1
        assert log == [1]
        assert loop.pending == 1
        assert loop.now == 10.0

    def test_events_can_schedule_more_events(self):
        loop = EventLoop()
        log = []

        def recur():
            log.append(loop.now)
            if loop.now < 5:
                loop.schedule_in(1.0, recur)

        loop.schedule(1.0, recur)
        loop.run_until(100.0)
        assert log == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_scheduling_in_the_past_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run_until(5.0)
        with pytest.raises(ValueError):
            loop.schedule(1.0, lambda: None)

    def test_peek_time(self):
        loop = EventLoop()
        assert loop.peek_time() is None
        loop.schedule(4.0, lambda: None)
        assert loop.peek_time() == 4.0
