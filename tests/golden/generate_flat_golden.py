"""Generate the golden rekey-payload fixtures in ``tests/golden/``.

The fixtures pin the *bytes on the wire* — wrap order, key ids, versions
and ciphertexts — for a handful of deterministic churn traces, as emitted
by the object kernel at the time of recording.  Both kernels must keep
reproducing them exactly (``tests/test_golden_payloads.py``), making the
fixtures a regression anchor that outlives any future rewrite of either
kernel: if the object tree's behavior ever drifts, the battery catches it
here rather than silently dragging the flat kernel along.

Regenerate (only when a payload change is *intended* and reviewed):

    PYTHONPATH=src python tests/golden/generate_flat_golden.py
"""

import json
import random
from pathlib import Path

FIXTURE = Path(__file__).parent / "flat_kernel_payloads.json"

TRACES = [
    {"name": "deg2-mixed", "seed": 7, "degree": 2, "steps": 15},
    {"name": "deg3-mixed", "seed": 19, "degree": 3, "steps": 15},
    {"name": "deg4-owf", "seed": 31, "degree": 4, "steps": 12,
     "join_refresh": "owf"},
]


def _build(trace, kernel):
    from repro.crypto.material import KeyGenerator
    from repro.keytree.serialize import make_kernel_rekeyer, make_kernel_tree

    # "<kernel>-bulk" runs the same kernel with the bulk crypto engine
    # forced on; the goldens must come out byte-identical either way.
    base_kernel, _, suffix = kernel.partition("-")
    tree = make_kernel_tree(
        base_kernel,
        degree=trace["degree"],
        keygen=KeyGenerator(trace["seed"]),
        name="golden/tree",
    )
    return make_kernel_rekeyer(tree, bulk=(suffix == "bulk") or None)


def _message_record(message):
    return {
        "epoch": message.epoch,
        "updated": [list(pair) for pair in message.updated],
        "advanced": [list(pair) for pair in message.advanced],
        "joined": list(message.joined),
        "departed": list(message.departed),
        "wraps": [
            [
                ek.wrapping_id,
                ek.wrapping_version,
                ek.payload_id,
                ek.payload_version,
                ek.ciphertext.hex(),
            ]
            for ek in message.encrypted_keys
        ],
    }


def replay(trace, kernel):
    """Run one deterministic churn trace; return per-step payload records."""
    rekeyer = _build(trace, kernel)
    join_refresh = trace.get("join_refresh", "random")
    rng = random.Random(trace["seed"])
    present = []
    counter = 0
    records = []
    for _ in range(trace["steps"]):
        op = rng.random()
        if op < 0.35 or not present:
            counter += 1
            member = f"m{counter}"
            message = rekeyer.join(member)[1]
            present.append(member)
        elif op < 0.5 and join_refresh != "owf":
            message = rekeyer.leave(present.pop(rng.randrange(len(present))))
        elif op < 0.9:
            ndep = (
                0
                if join_refresh == "owf"
                else rng.randrange(0, min(3, len(present)) + 1)
            )
            departures = [
                present.pop(rng.randrange(len(present)))
                for _ in range(min(ndep, len(present)))
            ]
            joins = []
            for _ in range(rng.randrange(1, 4)):
                counter += 1
                joins.append((f"m{counter}", None))
                present.append(f"m{counter}")
            message = rekeyer.rekey_batch(
                joins=joins, departures=departures, join_refresh=join_refresh
            )
        else:
            message = rekeyer.refresh_root()
        records.append(_message_record(message))
    return records


def main():
    fixture = {
        "format": 1,
        "note": "object-kernel golden payloads; both kernels must match",
        "traces": [
            {**trace, "records": replay(trace, "object")} for trace in TRACES
        ],
    }
    FIXTURE.write_text(json.dumps(fixture, indent=1) + "\n")
    sizes = [
        sum(len(r["wraps"]) for r in t["records"]) for t in fixture["traces"]
    ]
    print(f"wrote {FIXTURE} ({sizes} wraps per trace)")


if __name__ == "__main__":
    main()
