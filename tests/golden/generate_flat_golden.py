"""Generate the golden rekey-payload fixtures in ``tests/golden/``.

The fixtures pin the *bytes on the wire* — wrap order, key ids, versions
and ciphertexts — for a handful of deterministic churn traces, as emitted
by the object kernel at the time of recording.  Both kernels must keep
reproducing them exactly (``tests/test_golden_payloads.py``), making the
fixtures a regression anchor that outlives any future rewrite of either
kernel: if the object tree's behavior ever drifts, the battery catches it
here rather than silently dragging the flat kernel along.

Regenerate (only when a payload change is *intended* and reviewed):

    PYTHONPATH=src python tests/golden/generate_flat_golden.py
"""

import json
import random
from pathlib import Path

FIXTURE = Path(__file__).parent / "flat_kernel_payloads.json"

TRACES = [
    {"name": "deg2-mixed", "seed": 7, "degree": 2, "steps": 15},
    {"name": "deg3-mixed", "seed": 19, "degree": 3, "steps": 15},
    {"name": "deg4-owf", "seed": 31, "degree": 4, "steps": 12,
     "join_refresh": "owf"},
]


def _build(trace, kernel):
    import repro.crypto.bulk as bulk_mod
    from repro.crypto.material import KeyGenerator
    from repro.keytree.serialize import make_kernel_rekeyer, make_kernel_tree

    # Suffixes select execution variants that must all reproduce the same
    # golden bytes: "-bulk" forces the bulk crypto engine, "-tN" adds N
    # wrap worker threads, "-arena" plans from the secret arena (e.g.
    # "flat-bulk-t4-arena").
    base_kernel, _, suffix = kernel.partition("-")
    tokens = suffix.split("-") if suffix else []
    threads = None
    for token in tokens:
        if token.startswith("t") and token[1:].isdigit():
            threads = int(token[1:])
    if threads is not None and threads > 1:
        # Golden traces are small; drop the serial fallback so the
        # threaded path really executes under the fixture check.
        bulk_mod.MIN_ROWS_PER_THREAD = 1
    tree = make_kernel_tree(
        base_kernel,
        degree=trace["degree"],
        keygen=KeyGenerator(trace["seed"]),
        name="golden/tree",
    )
    return make_kernel_rekeyer(
        tree,
        bulk=("bulk" in tokens) or None,
        threads=threads,
        arena=True if "arena" in tokens else None,
    )


def _message_record(message):
    return {
        "epoch": message.epoch,
        "updated": [list(pair) for pair in message.updated],
        "advanced": [list(pair) for pair in message.advanced],
        "joined": list(message.joined),
        "departed": list(message.departed),
        "wraps": [
            [
                ek.wrapping_id,
                ek.wrapping_version,
                ek.payload_id,
                ek.payload_version,
                ek.ciphertext.hex(),
            ]
            for ek in message.encrypted_keys
        ],
    }


def replay(trace, kernel):
    """Run one deterministic churn trace; return per-step payload records."""
    import repro.crypto.bulk as bulk_mod

    saved_min_rows = bulk_mod.MIN_ROWS_PER_THREAD
    try:
        return _replay(trace, kernel)
    finally:
        bulk_mod.MIN_ROWS_PER_THREAD = saved_min_rows


def _replay(trace, kernel):
    rekeyer = _build(trace, kernel)
    join_refresh = trace.get("join_refresh", "random")
    rng = random.Random(trace["seed"])
    present = []
    counter = 0
    records = []
    for _ in range(trace["steps"]):
        op = rng.random()
        if op < 0.35 or not present:
            counter += 1
            member = f"m{counter}"
            message = rekeyer.join(member)[1]
            present.append(member)
        elif op < 0.5 and join_refresh != "owf":
            message = rekeyer.leave(present.pop(rng.randrange(len(present))))
        elif op < 0.9:
            ndep = (
                0
                if join_refresh == "owf"
                else rng.randrange(0, min(3, len(present)) + 1)
            )
            departures = [
                present.pop(rng.randrange(len(present)))
                for _ in range(min(ndep, len(present)))
            ]
            joins = []
            for _ in range(rng.randrange(1, 4)):
                counter += 1
                joins.append((f"m{counter}", None))
                present.append(f"m{counter}")
            message = rekeyer.rekey_batch(
                joins=joins, departures=departures, join_refresh=join_refresh
            )
        else:
            message = rekeyer.refresh_root()
        records.append(_message_record(message))
    return records


def main():
    fixture = {
        "format": 1,
        "note": "object-kernel golden payloads; both kernels must match",
        "traces": [
            {**trace, "records": replay(trace, "object")} for trace in TRACES
        ],
    }
    FIXTURE.write_text(json.dumps(fixture, indent=1) + "\n")
    sizes = [
        sum(len(r["wraps"]) for r in t["records"]) for t in fixture["traces"]
    ]
    print(f"wrote {FIXTURE} ({sizes} wraps per trace)")


if __name__ == "__main__":
    main()
