"""CLI surface of the observability layer.

``repro simulate --quick --trace --metrics``, ``repro metrics``,
``repro trace summarize`` and the bench obs-overhead gate.  The legacy
``repro trace <output>`` generator keeps its positional argument — the
summarizer is dispatched on the exact ``trace summarize`` prefix.
"""

import repro.obs as obs
from repro.cli import main
from repro.obs.metrics import parse_prometheus


def run_simulate(tmp_path, capsys, *extra):
    trace = tmp_path / "trace.jsonl"
    prom = tmp_path / "metrics.prom"
    rc = main(
        [
            "simulate", "--quick", "--scheme", "one",
            "--arrival-rate", "0.5", "--seed", "1",
            "--trace", str(trace), "--metrics", str(prom),
            *extra,
        ]
    )
    return rc, trace, prom, capsys.readouterr().out


def test_simulate_trace_and_metrics_flags(tmp_path, capsys):
    rc, trace, prom, out = run_simulate(tmp_path, capsys)
    assert rc == 0
    assert "wrote" in out and str(trace) in out and str(prom) in out
    records = obs.read_trace(trace)
    counts = obs.validate_trace_records(records)
    assert counts["span"] > 0
    assert counts["event"] > 0
    assert counts["metrics"] == 1
    samples = parse_prometheus(prom.read_text())
    assert samples["repro_server_rekeys_total"] > 0


def test_simulate_obs_check_agrees(tmp_path, capsys):
    from repro.obs.check import main as check_main

    rc, trace, prom, _ = run_simulate(tmp_path, capsys)
    assert rc == 0
    assert check_main([str(trace), str(prom)]) == 0
    assert "ok:" in capsys.readouterr().out


def test_simulate_without_flags_leaves_obs_off(capsys):
    from repro.obs import events, metrics, tracing

    rc = main(
        ["simulate", "--quick", "--scheme", "one",
         "--arrival-rate", "0.5", "--seed", "1"]
    )
    assert rc == 0
    assert metrics.active_registry() is None
    assert tracing.active_tracer() is None
    assert events.active_log() is None
    assert "wrote" not in capsys.readouterr().out.split("scheme:")[0]


def test_metrics_command_prom_format(capsys):
    rc = main(["metrics", "--horizon", "180", "--transport", "none"])
    assert rc == 0
    samples = parse_prometheus(capsys.readouterr().out)
    assert samples["repro_server_rekeys_total"] > 0


def test_metrics_command_json_format(capsys):
    import json

    rc = main(["metrics", "--horizon", "180", "--transport", "none",
               "--format", "json"])
    assert rc == 0
    dump = json.loads(capsys.readouterr().out)
    assert dump["server.rekeys"]["kind"] == "counter"


def test_trace_summarize_command(tmp_path, capsys):
    rc, trace, _, _ = run_simulate(tmp_path, capsys)
    assert rc == 0
    rc = main(["trace", "summarize", str(trace)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "top spans" in out
    assert "epoch" in out


def test_trace_generator_still_owns_positional(tmp_path, capsys):
    out_file = tmp_path / "membership.jsonl"
    rc = main(["trace", str(out_file), "--length", "60"])
    assert rc == 0
    assert out_file.exists()
    assert "membership records" in capsys.readouterr().out


def test_trace_export_then_check_chrome(tmp_path, capsys):
    import json

    from repro.obs.check import main as check_main
    from repro.obs.chrometrace import validate_chrome_trace

    rc, trace, prom, _ = run_simulate(tmp_path, capsys)
    assert rc == 0
    chrome = tmp_path / "out.chrome.json"
    rc = main(["trace", "export", str(trace), "--out", str(chrome)])
    out = capsys.readouterr().out
    assert rc == 0
    assert str(chrome) in out and "perfetto" in out.lower()
    doc = json.loads(chrome.read_text())
    counts = validate_chrome_trace(doc)
    assert counts["X"] == obs.validate_trace_records(obs.read_trace(trace))["span"]
    assert check_main([str(trace), str(prom), "--chrome", str(chrome)]) == 0
    assert "chrome trace ok" in capsys.readouterr().out


def test_trace_export_default_output_path(tmp_path, capsys):
    rc, trace, _, _ = run_simulate(tmp_path, capsys)
    assert rc == 0
    rc = main(["trace", "export", str(trace)])
    assert rc == 0
    assert (tmp_path / (trace.name + ".chrome.json")).exists()
    capsys.readouterr()


def test_simulate_serve_flag_announces_endpoint(tmp_path, capsys):
    rc, _, _, out = run_simulate(tmp_path, capsys, "--serve", "0")
    assert rc == 0
    assert "serving live metrics at http://127.0.0.1:" in out


def test_bench_gate_rejects_overbudget_probes(tmp_path, capsys, monkeypatch):
    import repro.cli as cli
    import repro.perf.bench as bench

    def fake_run_bench(**kwargs):
        return {
            "quick": True,
            "workers": 1,
            "cpus": 1,
            "scenarios": [],
            "peak_rss_kb": None,
            "obs_overhead": {
                "disabled_ns": {"metrics_inc": 9_999.0},
                "budget_ns": bench.OBS_OVERHEAD_BUDGET_NS,
                "pass": False,
            },
        }

    monkeypatch.setattr(bench, "run_bench", fake_run_bench)
    monkeypatch.chdir(tmp_path)
    rc = cli.main(["bench", "--quick", "--out", str(tmp_path / "b.json")])
    captured = capsys.readouterr()
    assert rc == 1
    assert "ERROR" in captured.err
    assert "ns/call" in captured.err
