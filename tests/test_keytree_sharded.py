"""ShardedKeyTree structure: placement, sizes, dumps, executor parity."""

import pytest

from repro.crypto.material import KeyGenerator
from repro.keytree.sharded import ShardedKeyTree, shard_of


def make_tree(shards=4, backend="serial", workers=1, seed=7):
    return ShardedKeyTree(
        shards=shards,
        degree=4,
        keygen=KeyGenerator(seed=seed),
        backend=backend,
        workers=workers,
    )


def join_batch(tree, member_ids, keygen):
    joins = [(m, keygen.generate(f"member:{m}")) for m in member_ids]
    return tree.apply_batch(joins=joins)


class TestPlacement:
    def test_shard_of_is_stable_and_in_range(self):
        for shards in (1, 2, 8, 16):
            for i in range(200):
                member = f"m{i}"
                shard = shard_of(member, shards)
                assert 0 <= shard < shards
                assert shard == shard_of(member, shards)

    def test_shard_of_is_roughly_balanced(self):
        shards = 8
        counts = [0] * shards
        population = 4000
        for i in range(population):
            counts[shard_of(f"member-{i}", shards)] += 1
        expected = population / shards
        for count in counts:
            assert abs(count - expected) < expected * 0.25

    def test_single_shard_routes_everything_to_zero(self):
        assert all(shard_of(f"m{i}", 1) == 0 for i in range(50))

    def test_apply_batch_records_placement(self):
        tree = make_tree()
        keygen = KeyGenerator(seed=1)
        join_batch(tree, [f"m{i}" for i in range(32)], keygen)
        for i in range(32):
            member = f"m{i}"
            assert member in tree
            assert tree.shard_holding(member) == shard_of(member, tree.shards)
        assert tree.size == 32
        assert sum(tree.shard_sizes().values()) == 32
        tree.close()

    def test_departure_updates_sizes_and_membership(self):
        tree = make_tree()
        keygen = KeyGenerator(seed=1)
        join_batch(tree, [f"m{i}" for i in range(16)], keygen)
        before = tree.shard_sizes()
        victim = "m5"
        shard = tree.shard_holding(victim)
        tree.apply_batch(departures=[victim])
        assert victim not in tree
        assert tree.shard_sizes()[shard] == before[shard] - 1
        with pytest.raises(KeyError):
            tree.shard_holding(victim)
        tree.close()

    def test_populated_shards_excludes_empty(self):
        tree = make_tree(shards=8)
        keygen = KeyGenerator(seed=1)
        join_batch(tree, ["only-one"], keygen)
        assert tree.populated_shards() == [shard_of("only-one", 8)]
        tree.close()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardedKeyTree(shards=0)
        with pytest.raises(ValueError):
            ShardedKeyTree(shards=2, backend="gpu")


class TestBatchOutcome:
    def test_touched_lists_only_affected_shards(self):
        tree = make_tree(shards=8)
        keygen = KeyGenerator(seed=3)
        join_batch(tree, [f"m{i}" for i in range(24)], keygen)
        victim = "m0"
        outcome = tree.apply_batch(departures=[victim])
        assert outcome.touched == [shard_of(victim, 8)]
        assert [f.shard for f in outcome.fragments] == outcome.touched
        tree.close()

    def test_fragments_come_back_in_shard_order(self):
        tree = make_tree(shards=8, backend="thread", workers=4)
        keygen = KeyGenerator(seed=3)
        outcome = join_batch(tree, [f"m{i}" for i in range(40)], keygen)
        order = [f.shard for f in outcome.fragments]
        assert order == sorted(order)
        tree.close()

    def test_fragment_roots_match_root_key_query(self):
        tree = make_tree(shards=4)
        keygen = KeyGenerator(seed=3)
        outcome = join_batch(tree, [f"m{i}" for i in range(20)], keygen)
        for fragment in outcome.fragments:
            assert tree.root_key(fragment.shard) == fragment.root_key
        tree.close()


class TestExecutorParity:
    """The same batch sequence emits identical fragments on every backend."""

    def run_sequence(self, backend, workers):
        tree = make_tree(shards=4, backend=backend, workers=workers, seed=11)
        keygen = KeyGenerator(seed=12)
        transcript = []
        try:
            outcome = join_batch(tree, [f"m{i}" for i in range(30)], keygen)
            transcript.append(self.flatten(outcome))
            outcome = tree.apply_batch(
                joins=[("zz", keygen.generate("member:zz"))],
                departures=["m4", "m9"],
            )
            transcript.append(self.flatten(outcome))
            roots = {s: tree.root_key(s) for s in tree.populated_shards()}
        finally:
            tree.close()
        return transcript, roots

    @staticmethod
    def flatten(outcome):
        return [
            (
                fragment.shard,
                tuple(
                    (
                        ek.wrapping_id,
                        ek.wrapping_version,
                        ek.payload_id,
                        ek.payload_version,
                        ek.ciphertext,
                    )
                    for ek in fragment.encrypted_keys
                ),
            )
            for fragment in outcome.fragments
        ]

    @pytest.mark.parametrize(
        "backend,workers", [("thread", 2), ("process", 2)]
    )
    def test_backend_emits_identical_fragments(self, backend, workers):
        reference = self.run_sequence("serial", 1)
        assert self.run_sequence(backend, workers) == reference


class TestDumpLoad:
    def test_round_trip_re_derives_identical_payloads(self):
        live = make_tree(shards=4, seed=21)
        keygen = KeyGenerator(seed=22)
        join_batch(live, [f"m{i}" for i in range(20)], keygen)
        live.apply_batch(departures=["m3", "m8"])

        twin = make_tree(shards=4, seed=99)  # seed replaced by the load
        twin.load_shards(live.dump_shards())
        assert twin.shard_sizes() == live.shard_sizes()
        assert twin.members() and set(twin.members()) == set(live.members())
        for shard in live.populated_shards():
            assert twin.root_key(shard) == live.root_key(shard)

        followup_keygen = KeyGenerator(seed=22)
        followup_keygen._counter = keygen._counter
        live_out = live.apply_batch(
            joins=[("late", keygen.generate("member:late"))],
            departures=["m1"],
        )
        twin_out = twin.apply_batch(
            joins=[("late", followup_keygen.generate("member:late"))],
            departures=["m1"],
        )
        assert TestExecutorParity.flatten(twin_out) == (
            TestExecutorParity.flatten(live_out)
        )
        live.close()
        twin.close()

    def test_member_path_keys_end_at_shard_root(self):
        tree = make_tree(shards=4)
        keygen = KeyGenerator(seed=5)
        join_batch(tree, [f"m{i}" for i in range(16)], keygen)
        for member in ("m0", "m7", "m15"):
            path = tree.member_path_keys(member)
            assert path
            assert path[-1] == tree.root_key(tree.shard_holding(member))
        tree.close()
