"""Failure-injection tests: receivers that vanish mid-delivery.

A member can depart (and unsubscribe from the multicast channel) while a
rekey delivery is still retransmitting.  The transports must not spin
until ``max_rounds`` chasing a ghost — they drop unsubscribed receivers
and finish.
"""

import pytest

from repro.crypto.material import KeyGenerator
from repro.crypto.wrap import wrap_key
from repro.network.channel import MulticastChannel
from repro.network.loss import BernoulliLoss
from repro.transport.fec import ProactiveFecProtocol
from repro.transport.multisend import MultiSendProtocol
from repro.transport.session import TransportTask
from repro.transport.wka_bkr import WkaBkrProtocol


class _VanishingLoss:
    """Loses everything, and unsubscribes its receiver after a few draws —
    simulating a member that departs mid-delivery."""

    mean_loss = 0.999

    def __init__(self, channel, receiver_id, after=3):
        self.channel = channel
        self.receiver_id = receiver_id
        self.remaining = after

    def lost(self, rng):
        self.remaining -= 1
        if self.remaining <= 0 and self.receiver_id in self.channel:
            # Not during iteration over this receiver's own multicast —
            # the channel evaluates one receiver at a time, and protocols
            # re-check membership per round.
            self.channel._receivers.pop(self.receiver_id, None)
        return True


def make_task(count=12):
    gen = KeyGenerator(71)
    wrapping = gen.generate("w")
    keys = [wrap_key(wrapping, gen.generate(f"k{i}")) for i in range(count)]
    return TransportTask(
        keys=keys,
        interest={"healthy": set(range(count)), "ghost": set(range(count))},
    )


PROTOCOLS = [
    MultiSendProtocol(keys_per_packet=4, max_rounds=30),
    WkaBkrProtocol(keys_per_packet=4, max_rounds=30),
    ProactiveFecProtocol(keys_per_packet=4, block_size=3, max_rounds=30),
]


@pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda p: p.name)
def test_departed_receiver_does_not_stall_delivery(protocol):
    channel = MulticastChannel(seed=5)
    channel.subscribe("healthy", BernoulliLoss(0.1))
    ghost_loss = _VanishingLoss(channel, "ghost", after=3)
    channel.subscribe("ghost", ghost_loss)

    result = protocol.run(make_task(), channel)
    assert result.satisfied
    assert result.rounds < 30  # finished well before the safety bound


@pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda p: p.name)
def test_all_receivers_departed_terminates(protocol):
    channel = MulticastChannel(seed=6)
    ghost_loss = _VanishingLoss(channel, "ghost", after=2)
    channel.subscribe("ghost", ghost_loss)
    task = make_task()
    task.interest = {"ghost": set(range(len(task.keys)))}
    result = protocol.run(task, channel)
    assert result.satisfied
