"""Unit tests for the perf instrumentation layer."""

import pytest

from repro.perf import (
    Counter,
    PerfRecorder,
    Timer,
    active_recorder,
    count,
    recording,
    timed,
)


class TestRecorder:
    def test_counts_accumulate(self):
        recorder = PerfRecorder()
        recorder.count("ops")
        recorder.count("ops", 4)
        assert recorder.counter("ops") == 5

    def test_unknown_counter_reads_zero(self):
        assert PerfRecorder().counter("missing") == 0

    def test_timeit_accumulates_wall_clock(self):
        recorder = PerfRecorder()
        with recorder.timeit("phase"):
            pass
        with recorder.timeit("phase"):
            pass
        timer = recorder.timers["phase"]
        assert timer.calls == 2
        assert timer.total >= 0.0
        assert recorder.timer_total("phase") == timer.total

    def test_unknown_timer_total_is_zero(self):
        assert PerfRecorder().timer_total("missing") == 0.0

    def test_snapshot_is_plain_data(self):
        recorder = PerfRecorder()
        recorder.count("ops", 3)
        with recorder.timeit("phase"):
            pass
        snap = recorder.snapshot()
        assert snap["counters"]["ops"] == 3
        assert "phase" in snap["timers"]


class TestModuleProbes:
    def test_probes_are_noops_without_recorder(self):
        assert active_recorder() is None
        count("ops", 10)  # must not raise
        with timed("phase"):
            pass
        assert active_recorder() is None

    def test_recording_installs_and_restores(self):
        recorder = PerfRecorder()
        with recording(recorder) as active:
            assert active is recorder
            assert active_recorder() is recorder
            count("ops", 2)
            with timed("phase"):
                pass
        assert active_recorder() is None
        assert recorder.counter("ops") == 2
        assert recorder.timers["phase"].calls == 1

    def test_recording_nests(self):
        outer, inner = PerfRecorder(), PerfRecorder()
        with recording(outer):
            with recording(inner):
                count("ops")
            count("ops")
        assert inner.counter("ops") == 1
        assert outer.counter("ops") == 1

    def test_recording_creates_recorder_when_omitted(self):
        with recording() as recorder:
            count("ops")
        assert isinstance(recorder, PerfRecorder)
        assert recorder.counter("ops") == 1


def test_dataclass_shapes():
    assert Counter("n", 3).value == 3
    timer = Timer("t")
    assert timer.calls == 0 and timer.total == 0.0
