"""Unit tests for the Appendix B WKA-BKR bandwidth model."""

import pytest

from repro.analysis.batchcost import expected_batch_cost, expected_batch_cost_full
from repro.analysis.wka import (
    expected_transmissions,
    wka_rekey_cost,
    wka_rekey_cost_full,
)


class TestExpectedTransmissions:
    def test_single_receiver_geometric_mean(self):
        """R = 1: E[M] = 1 / (1 - p) (the paper's E[Mr])."""
        for p in (0.0, 0.1, 0.3, 0.5):
            assert expected_transmissions(1, ((p, 1.0),)) == pytest.approx(
                1 / (1 - p), rel=1e-9
            )

    def test_zero_loss_single_transmission(self):
        assert expected_transmissions(1000, ((0.0, 1.0),)) == pytest.approx(1.0)

    def test_no_receivers_no_transmissions(self):
        assert expected_transmissions(0, ((0.1, 1.0),)) == 0.0

    def test_grows_with_audience(self):
        values = [
            expected_transmissions(r, ((0.2, 1.0),)) for r in (1, 4, 16, 64, 256)
        ]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_grows_with_loss(self):
        values = [
            expected_transmissions(64, ((p, 1.0),)) for p in (0.01, 0.05, 0.2, 0.5)
        ]
        assert values == sorted(values)

    def test_matches_direct_series(self):
        """Cross-check eq. (14) against a brute-force partial sum."""
        p, r = 0.2, 8
        brute = sum(1 - (1 - p ** (m - 1)) ** r for m in range(1, 200))
        assert expected_transmissions(r, ((p, 1.0),)) == pytest.approx(brute)

    def test_mixture_between_pure_extremes(self):
        pure_low = expected_transmissions(100, ((0.02, 1.0),))
        pure_high = expected_transmissions(100, ((0.2, 1.0),))
        mixed = expected_transmissions(100, ((0.2, 0.5), (0.02, 0.5)))
        assert pure_low < mixed < pure_high

    def test_mixture_validation(self):
        with pytest.raises(ValueError):
            expected_transmissions(10, ((0.2, 0.5), (0.02, 0.4)))
        with pytest.raises(ValueError):
            expected_transmissions(10, ((1.0, 1.0),))


class TestRekeyCost:
    def test_zero_loss_reduces_to_batch_cost(self):
        """With p = 0 every key is sent once: E[V] = Ne(N, L)."""
        mixture = ((0.0, 1.0),)
        assert wka_rekey_cost(4096, 64, mixture, 4) == pytest.approx(
            expected_batch_cost(4096, 64, 4)
        )
        assert wka_rekey_cost_full(4096, 64, mixture, 4) == pytest.approx(
            expected_batch_cost_full(4096, 64, 4)
        )

    def test_full_and_exact_agree_at_powers(self):
        mixture = ((0.2, 0.3), (0.02, 0.7))
        assert wka_rekey_cost(4096, 64, mixture, 4) == pytest.approx(
            wka_rekey_cost_full(4096, 64, mixture, 4), rel=1e-9
        )

    def test_cost_exceeds_keys_under_loss(self):
        mixture = ((0.15, 1.0),)
        assert wka_rekey_cost(4096, 64, mixture, 4) > expected_batch_cost(4096, 64, 4)

    def test_monotone_in_loss(self):
        costs = [
            wka_rekey_cost(65_536, 256, ((p, 1.0),), 4)
            for p in (0.0, 0.02, 0.1, 0.2, 0.4)
        ]
        assert costs == sorted(costs)

    def test_trivial_inputs_free(self):
        assert wka_rekey_cost(0, 10, ((0.1, 1.0),)) == 0.0
        assert wka_rekey_cost(100, 0, ((0.1, 1.0),)) == 0.0
        assert wka_rekey_cost_full(1, 10, ((0.1, 1.0),)) == 0.0

    def test_paper_fig6_endpoints(self):
        """At the Fig. 6 defaults the all-low and all-high costs bracket
        the paper's y-range (~5000 and ~9200 keys)."""
        low = wka_rekey_cost(65_536, 256, ((0.02, 1.0),), 4)
        high = wka_rekey_cost(65_536, 256, ((0.2, 1.0),), 4)
        assert 4500 < low < 6000
        assert 8500 < high < 10_500
