"""Direct tests for the Fig. 7 misplacement model (analysis.misplacement)."""

import math

import pytest

from repro.analysis.losshomog import (
    TreeSpec,
    loss_homogenized_cost,
    multi_tree_cost,
)
from repro.analysis.misplacement import misplaced_partition_specs

N, PH, PL = 1024.0, 0.20, 0.02


def mixture_of(spec):
    return dict(spec.mixture)


def test_beta_zero_is_perfect_homogenization():
    specs = misplaced_partition_specs(N, 0.3, PH, PL, 0.0)
    assert len(specs) == 2
    high, low = specs
    assert high.size == pytest.approx(N * 0.3)
    assert low.size == pytest.approx(N * 0.7)
    assert mixture_of(high) == {PH: 1.0}
    assert mixture_of(low) == {PL: 1.0}


def test_beta_zero_cost_matches_loss_homogenized_model():
    alpha = 0.3
    specs = misplaced_partition_specs(N, alpha, PH, PL, 0.0)
    direct = multi_tree_cost(specs, total_departures=64.0)
    via_mixture = loss_homogenized_cost(
        N, 64.0, mixture=((PH, alpha), (PL, 1.0 - alpha))
    )
    assert direct == pytest.approx(via_mixture)


def test_beta_one_fully_exchanges_populations():
    """At β = 1 the nominally-high tree is all low-loss (the paper's
    observation that the curve recovers near 1)."""
    alpha = 0.3
    specs = misplaced_partition_specs(N, alpha, PH, PL, 1.0)
    high, low = specs
    assert mixture_of(high) == {PL: 1.0}
    # The low tree absorbed all alpha*N genuinely-high-loss members.
    assert mixture_of(low)[PH] == pytest.approx(alpha / (1.0 - alpha))


def test_sizes_are_invariant_in_beta():
    for beta in (0.0, 0.2, 0.5, 0.8, 1.0):
        specs = misplaced_partition_specs(N, 0.3, PH, PL, beta)
        assert sum(s.size for s in specs) == pytest.approx(N)
        assert specs[0].size == pytest.approx(N * 0.3)


def test_mixtures_always_normalized():
    for beta in (0.0, 0.1, 0.37, 0.9, 1.0):
        for spec in misplaced_partition_specs(N, 0.25, PH, PL, beta):
            assert sum(f for __, f in spec.mixture) == pytest.approx(1.0)
            assert all(f > 0 for __, f in spec.mixture)


def test_misplacement_never_beats_perfect_placement():
    """β > 0 costs at least as much as β = 0 — misplacement only hurts."""
    alpha, departures = 0.3, 64.0
    baseline = multi_tree_cost(
        misplaced_partition_specs(N, alpha, PH, PL, 0.0), departures
    )
    for beta in (0.1, 0.3, 0.5, 0.7, 0.9):
        cost = multi_tree_cost(
            misplaced_partition_specs(N, alpha, PH, PL, beta), departures
        )
        assert cost >= baseline - 1e-9


def test_cost_recovers_near_full_exchange():
    """The Fig. 7 hump: mid-range β is worse than β = 1."""
    alpha, departures = 0.3, 64.0
    mid = multi_tree_cost(
        misplaced_partition_specs(N, alpha, PH, PL, 0.5), departures
    )
    full = multi_tree_cost(
        misplaced_partition_specs(N, alpha, PH, PL, 1.0), departures
    )
    assert full < mid


def test_degenerate_alpha_endpoints():
    assert len(misplaced_partition_specs(N, 0.0, PH, PL, 0.0)) == 1
    specs = misplaced_partition_specs(N, 1.0, PH, PL, 0.0)
    assert len(specs) == 1 and specs[0].size == pytest.approx(N)


def test_capacity_overflow_raises():
    # beta * alpha > 1 - alpha: more swapped-in members than the low tree holds.
    with pytest.raises(ValueError, match="swap count exceeds"):
        misplaced_partition_specs(N, 0.8, PH, PL, 0.5)


@pytest.mark.parametrize("bad_alpha", [-0.1, 1.1])
def test_alpha_validation(bad_alpha):
    with pytest.raises(ValueError, match="high_fraction"):
        misplaced_partition_specs(N, bad_alpha, PH, PL, 0.0)


@pytest.mark.parametrize("bad_beta", [-0.01, 1.01])
def test_beta_validation(bad_beta):
    with pytest.raises(ValueError, match="misplaced_fraction"):
        misplaced_partition_specs(N, 0.3, PH, PL, bad_beta)
