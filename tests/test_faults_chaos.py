"""Chaos harness smoke tests: faults end-to-end with zero violations."""

import json

import pytest

from repro.faults.chaos import ChaosSimulation, run_chaos, run_chaos_case
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.members.durations import TwoClassDuration
from repro.members.population import LossPopulation
from repro.server.onetree import OneTreeServer
from repro.sim.simulation import SimulationConfig
from repro.transport.wka_bkr import WkaBkrProtocol


def test_blackout_resync_abandons_then_recovers():
    report = run_chaos_case("one", "blackout-resync", seed=7, horizon=1200.0)
    assert report["violations"] == []
    assert report["abandoned"] > 0
    recoveries = report["recoveries"]
    assert recoveries["count"] > 0
    assert recoveries["latency_min_s"] > 0.0
    assert recoveries["keys_total"] > 0
    assert report["counters"]["server.catchups"] == recoveries["count"]


def test_crash_restore_is_transparent():
    report = run_chaos_case("one", "crash-restore", seed=7, horizon=1200.0)
    assert report["violations"] == []
    assert report["server_crashes"] > 0
    assert report["rekeyings"] > 0


def test_two_partition_under_randomized_faults():
    report = run_chaos_case("tt", "randomized", seed=11, horizon=1200.0)
    assert report["violations"] == []


def test_run_chaos_writes_report(tmp_path):
    out = tmp_path / "BENCH_chaos.json"
    report = run_chaos(
        seed=7,
        horizon=900.0,
        schemes=("one",),
        schedules=("blackout-resync",),
        out_path=str(out),
    )
    assert report["violations_total"] == 0
    assert report["recoveries_total"] > 0
    on_disk = json.loads(out.read_text())
    assert on_disk["runs"][0]["scheme"] == "one"
    assert on_disk["violations_total"] == 0


def test_chaos_simulation_detects_planted_violation():
    """The harness must actually catch a broken invariant, not just pass."""
    config = SimulationConfig(
        arrival_rate=0.05,
        rekey_period=60.0,
        horizon=600.0,
        duration_model=TwoClassDuration(),
        loss_population=LossPopulation.two_point(),
        transport=WkaBkrProtocol(
            keys_per_packet=16,
            retry=RetryPolicy(max_rounds=8, abandon_after=4),
        ),
        verify=True,
        seed=7,
        fault_schedule=FaultSchedule(),
    )
    sim = ChaosSimulation(OneTreeServer(), config)
    metrics = sim.run()
    assert sim.violations == []
    # Now plant a forward-secrecy hole: give a departed member the DEK.
    if not sim.departed:
        pytest.skip("workload produced no departures to corrupt")
    from repro.server.base import BatchResult

    adversary = sim.departed[0]
    adversary.install(sim.server.group_key())
    sim._verify(BatchResult(epoch=999, time=601.0))
    assert any("evicted" in v for v in sim.violations)
    assert metrics.rekey_count > 0
