"""Property-based tests (hypothesis) for the key-tree structures."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.material import KeyGenerator
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.tree import KeyTree

# An operation stream: True = join a fresh member, False = remove the
# oldest surviving member (skipped when none exist).
op_streams = st.lists(st.booleans(), min_size=1, max_size=120)
degrees = st.integers(min_value=2, max_value=6)


@settings(max_examples=60, deadline=None)
@given(ops=op_streams, degree=degrees)
def test_tree_invariants_hold_under_arbitrary_churn(ops, degree):
    tree = KeyTree(degree=degree, keygen=KeyGenerator(0))
    alive = []
    counter = 0
    for join in ops:
        if join or not alive:
            member = f"m{counter}"
            counter += 1
            tree.add_member(member)
            alive.append(member)
        else:
            tree.remove_member(alive.pop(0))
    tree.validate()
    assert tree.size == len(alive)
    assert sorted(tree.members()) == sorted(alive)


@settings(max_examples=40, deadline=None)
@given(count=st.integers(min_value=1, max_value=200), degree=degrees)
def test_insertion_only_trees_are_balanced(count, degree):
    tree = KeyTree(degree=degree, keygen=KeyGenerator(1))
    for i in range(count):
        tree.add_member(f"m{i}")
    tree.validate()
    assert tree.is_balanced(slack=1)


@settings(max_examples=30, deadline=None)
@given(
    count=st.integers(min_value=2, max_value=60),
    victims=st.data(),
    degree=degrees,
)
def test_batch_rekey_refreshes_exactly_affected_paths(count, victims, degree):
    tree = KeyTree(degree=degree, keygen=KeyGenerator(2))
    rekeyer = LkhRekeyer(tree)
    members = [f"m{i}" for i in range(count)]
    rekeyer.rekey_batch(joins=[(m, None) for m in members])
    before = {n.node_id: n.key.version for n in tree.iter_nodes()}

    k = victims.draw(st.integers(min_value=1, max_value=count))
    departures = members[:k]
    message = rekeyer.rekey_batch(departures=departures)

    updated_ids = {key_id for key_id, __ in message.updated}
    for node in tree.iter_nodes():
        if node.is_leaf:
            continue
        if node.node_id in before:
            changed = node.key.version != before[node.node_id]
            assert changed == (node.node_id in updated_ids)
    # Wrap count equals the children of every updated surviving node.
    expected_wraps = sum(
        len(node.children)
        for node in tree.iter_nodes()
        if node.node_id in updated_ids
    )
    assert message.cost == expected_wraps


@settings(max_examples=30, deadline=None)
@given(
    count=st.integers(min_value=4, max_value=80),
    leavers=st.integers(min_value=1, max_value=10),
)
def test_survivor_key_coverage_after_batch(count, leavers):
    """After any batch, every survivor's path keys are reachable from its
    individual key through the message (decryptability invariant)."""
    from repro.members.member import Member

    leavers = min(leavers, count - 1)
    tree = KeyTree(degree=4, keygen=KeyGenerator(3))
    rekeyer = LkhRekeyer(tree)
    members = [f"m{i}" for i in range(count)]
    rekeyer.rekey_batch(joins=[(m, None) for m in members])
    survivors = {}
    for m in members[leavers:]:
        member = Member(m, tree.leaf_of(m).key)
        for node in tree.path_of(m):
            member.install(node.key)
        survivors[m] = member
    message = rekeyer.rekey_batch(departures=members[:leavers])
    for m, member in survivors.items():
        member.process_rekey(message)
        for node in tree.path_of(m):
            assert member.holds(node.key.key_id, node.key.version), (m, node.node_id)
