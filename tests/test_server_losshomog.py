"""Unit tests for the loss-homogenized multi-keytree server."""

import pytest

from repro.members.member import Member
from repro.server.losshomog import LossHomogenizedServer


def admit(server, specs, now=0.0):
    """``specs`` is {member_id: loss_rate}."""
    members = {}
    for member_id, loss in specs.items():
        kwargs = {"loss_rate": loss} if server.placement == "loss" else {}
        reg = server.join(member_id, at_time=now, **kwargs)
        members[member_id] = Member(member_id, reg.individual_key)
    result = server.rekey(now=now)
    for member in members.values():
        member.absorb(result.encrypted_keys)
    return members, result


class TestConstruction:
    def test_rejects_empty_classes(self):
        with pytest.raises(ValueError):
            LossHomogenizedServer(class_rates=())

    def test_rejects_unknown_placement(self):
        with pytest.raises(ValueError):
            LossHomogenizedServer(placement="chaotic")

    def test_deduplicates_class_rates(self):
        server = LossHomogenizedServer(class_rates=(0.2, 0.2, 0.02))
        assert server.class_rates == (0.2, 0.02)


class TestPlacement:
    def test_nearest_rate_wins(self):
        server = LossHomogenizedServer(class_rates=(0.20, 0.02))
        server.join("high", loss_rate=0.25)
        server.join("low", loss_rate=0.001)
        server.join("middle-high", loss_rate=0.15)
        server.rekey()
        assert server.tree_of("high") == 0.20
        assert server.tree_of("low") == 0.02
        assert server.tree_of("middle-high") == 0.20

    def test_loss_placement_requires_rate(self):
        server = LossHomogenizedServer()
        with pytest.raises(ValueError):
            server.join("a")

    def test_random_placement_round_robins(self):
        server = LossHomogenizedServer(class_rates=(0.2, 0.02), placement="random")
        for i in range(10):
            server.join(f"m{i}")
        server.rekey()
        sizes = server.tree_sizes()
        assert sizes[0.2] == 5
        assert sizes[0.02] == 5

    def test_tree_of_unknown_raises(self):
        server = LossHomogenizedServer()
        with pytest.raises(KeyError):
            server.tree_of("ghost")

    def test_members_never_move_between_trees(self):
        """Section 4.2: once placed, a member stays even if its loss
        estimate would now map elsewhere (no re-homogenization)."""
        server = LossHomogenizedServer(class_rates=(0.2, 0.02))
        server.join("a", loss_rate=0.18)
        server.rekey()
        placed = server.tree_of("a")
        for now in (60.0, 120.0, 180.0):
            server.rekey(now=now)
        assert server.tree_of("a") == placed


class TestRekeying:
    def test_everyone_gets_group_key(self):
        server = LossHomogenizedServer(class_rates=(0.2, 0.02))
        members, __ = admit(
            server, {f"h{i}": 0.2 for i in range(4)} | {f"l{i}": 0.02 for i in range(12)}
        )
        dek = server.group_key()
        for member in members.values():
            assert member.holds(dek.key_id, dek.version), member.member_id

    def test_departure_in_one_tree_leaves_other_interior_untouched(self):
        server = LossHomogenizedServer(class_rates=(0.2, 0.02))
        members, __ = admit(
            server, {f"h{i}": 0.2 for i in range(8)} | {f"l{i}": 0.02 for i in range(8)}
        )
        low_tree = server.trees[0.02]
        versions = {n.node_id: n.key.version for n in low_tree.iter_nodes()}
        server.leave("h0", at_time=60.0)
        evicted = members.pop("h0")
        result = server.rekey(now=60.0)
        # Low tree: only the DEK wrap under its (unchanged) root.
        for node in low_tree.iter_nodes():
            assert node.key.version == versions[node.node_id]
        assert result.breakdown.get("tree-p0.02", 0) == 0
        # Forward secrecy still holds.
        for member in members.values():
            member.absorb(result.encrypted_keys)
        evicted.absorb(result.encrypted_keys)
        dek = server.group_key()
        assert not evicted.holds(dek.key_id, dek.version)
        for member in members.values():
            assert member.holds(dek.key_id, dek.version)

    def test_group_key_wraps_once_per_populated_tree_on_departure(self):
        server = LossHomogenizedServer(class_rates=(0.2, 0.02))
        members, __ = admit(
            server, {"h0": 0.2, "h1": 0.2, "l0": 0.02, "l1": 0.02}
        )
        server.leave("h0")
        result = server.rekey()
        assert result.breakdown["group-key"] == 2

    def test_empty_tree_costs_nothing(self):
        server = LossHomogenizedServer(class_rates=(0.2, 0.02))
        members, result = admit(server, {"l0": 0.02, "l1": 0.02})
        assert "tree-p0.2" not in result.breakdown
        server.leave("l0")
        result = server.rekey()
        assert result.breakdown["group-key"] == 1  # only the populated tree

    def test_misplaced_member_still_gets_keys(self):
        """Misplacement costs bandwidth (Fig. 7), never correctness."""
        server = LossHomogenizedServer(class_rates=(0.2, 0.02))
        members, __ = admit(server, {"actually-low": 0.2, "l0": 0.02})
        server.leave("l0", at_time=60.0)
        members.pop("l0")
        result = server.rekey(now=60.0)
        for member in members.values():
            member.absorb(result.encrypted_keys)
            dek = server.group_key()
            assert member.holds(dek.key_id, dek.version)
