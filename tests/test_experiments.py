"""Tests for the per-figure experiment drivers and headline numbers."""

import pytest

from repro.experiments import (
    fec_gain_series,
    fig3_series,
    fig4_series,
    fig5_series,
    fig6_series,
    fig7_series,
    headline_numbers,
)
from repro.experiments.defaults import TABLE1, table1_rows
from repro.experiments.headlines import PAPER_CLAIMS, format_headlines
from repro.experiments.report import Series, reduction_percent


class TestReport:
    def test_series_rejects_wrong_length(self):
        series = Series("t", "x", [1.0, 2.0])
        with pytest.raises(ValueError):
            series.add_column("bad", [1.0])

    def test_format_table_has_header_and_rows(self):
        series = Series("My figure", "x", [1.0, 2.0])
        series.add_column("y", [10.0, 20.5])
        text = series.format_table()
        lines = text.splitlines()
        assert lines[0] == "My figure"
        assert "x" in lines[1] and "y" in lines[1]
        assert len(lines) == 2 + 1 + 2  # title, header, rule, rows

    def test_reduction_percent(self):
        assert reduction_percent(200, 150) == pytest.approx(25.0)
        assert reduction_percent(0, 10) == 0.0


class TestTable1:
    def test_rows_cover_all_parameters(self):
        rows = table1_rows()
        assert len(rows) == 7
        symbols = [symbol for __, symbol, __ in rows]
        assert symbols == ["Tp", "N", "d", "K", "Ms", "Ml", "alpha"]

    def test_table1_object_consistent(self):
        assert TABLE1.group_size == 65_536
        assert TABLE1.k_periods == 10


class TestFigureSeries:
    def test_fig3_shape(self):
        series = fig3_series(k_values=range(0, 21, 5))
        assert series.x_values == [0.0, 5.0, 10.0, 15.0, 20.0]
        one = series.column("one-keytree")
        tt = series.column("TT-scheme")
        pt = series.column("PT-scheme")
        assert one[0] == pytest.approx(tt[0])  # K=0 collapse
        assert min(tt) < one[0]
        assert all(p < o for p, o in zip(pt[1:], one[1:]))

    def test_fig4_crossover(self):
        series = fig4_series(alpha_values=[0.2, 0.8])
        one = series.column("one-keytree")
        qt = series.column("QT-scheme")
        assert qt[0] > one[0]  # alpha=0.2: partitioning loses
        assert qt[1] < one[1]  # alpha=0.8: partitioning wins

    def test_fig5_reductions_positive_and_flat(self):
        series = fig5_series()
        for name in ("QT-scheme", "TT-scheme"):
            values = series.column(name)
            assert all(v > 0.2 for v in values)
            assert max(values) - min(values) < 0.05

    def test_fig6_ordering(self):
        series = fig6_series(alpha_values=[0.0, 0.3, 1.0])
        one = series.column("one-keytree")
        rnd = series.column("two-random-keytrees")
        hom = series.column("two-loss-homogenized")
        assert hom[0] == pytest.approx(one[0])
        assert hom[2] == pytest.approx(one[2])
        assert hom[1] < one[1] < rnd[1]

    def test_fig7_recovery_at_full_swap(self):
        series = fig7_series(beta_values=[0.0, 0.5, 0.8, 1.0])
        mis = series.column("mis-partitioned")
        correct = series.column("correctly-partitioned")
        assert mis[0] == pytest.approx(correct[0])
        assert mis[1] > mis[0]
        assert mis[3] < mis[2]  # beta=1 improves over beta=0.8

    def test_fec_gain_series_positive_in_middle(self):
        series = fec_gain_series(alpha_values=[0.0, 0.1, 1.0])
        gains = series.column("gain-%")
        assert gains[0] == pytest.approx(0.0, abs=1e-6)
        assert gains[2] == pytest.approx(0.0, abs=1e-6)
        assert gains[1] > 10.0


class TestHeadlines:
    def test_all_claims_recomputed_within_tolerance(self):
        """The abstract's numbers, reproduced.  Tolerances reflect what
        'shape holds' means per DESIGN.md: two-partition and WKA claims
        land within a few points; the FEC claim (whose protocol constants
        the paper never reports) within ~10 points."""
        measured = headline_numbers()
        assert measured["two_partition_peak_reduction_pct"] == pytest.approx(
            31.4, abs=3.0
        )
        assert measured["two_partition_peak_alpha"] == pytest.approx(0.9, abs=0.1)
        assert measured["tt_reduction_at_defaults_pct"] == pytest.approx(25.0, abs=4.0)
        assert measured["pt_reduction_at_defaults_pct"] == pytest.approx(40.0, abs=4.0)
        assert measured["fig5_mean_reduction_pct"] > 22.0
        assert measured["loss_homog_peak_reduction_pct"] == pytest.approx(
            12.1, abs=2.5
        )
        assert measured["loss_homog_peak_alpha"] == pytest.approx(0.3, abs=0.15)
        assert measured["fec_gain_at_alpha_0.1_pct"] == pytest.approx(25.7, abs=10.0)

    def test_format_headlines_lists_every_claim(self):
        text = format_headlines()
        for claim in PAPER_CLAIMS:
            assert claim in text
