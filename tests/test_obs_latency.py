"""Member-level time-to-new-DEK accounting (repro.obs.latency)."""

import json

import pytest

import repro.obs as obs
from repro.members.durations import TwoClassDuration
from repro.members.population import LossPopulation
from repro.obs import metrics as obs_metrics
from repro.obs.latency import LATENCY_METRIC, LatencyTracker, exact_percentile
from repro.obs.metrics import (
    LATENCY_LOG_BUCKETS_S,
    MetricsRegistry,
    bucket_quantile,
    merge_bucket_series,
)
from repro.sim.simulation import GroupRekeyingSimulation, SimulationConfig
from repro.transport.wka_bkr import WkaBkrProtocol


class TestExactPercentile:
    def test_empty_is_zero(self):
        assert exact_percentile(0, [], 0.5) == 0.0

    def test_all_zeros(self):
        assert exact_percentile(10, [], 0.99) == 0.0

    def test_rank_falls_in_zeros(self):
        # 9 zeros + one 30s straggler: p50 is still 0, p99 is the tail.
        assert exact_percentile(9, [30.0], 0.50) == 0.0
        assert exact_percentile(9, [30.0], 0.99) == 30.0

    def test_exact_rank_convention(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert exact_percentile(0, values, 0.50) == 2.0
        assert exact_percentile(0, values, 0.75) == 3.0
        assert exact_percentile(0, values, 1.00) == 4.0


class TestBucketQuantile:
    def test_empty(self):
        assert bucket_quantile([1.0, 2.0], [0, 0, 0], 0.5) is None

    def test_returns_bucket_upper_bound(self):
        bounds = [1.0, 2.0, 4.0]
        counts = [5, 3, 2, 0]  # + overflow
        assert bucket_quantile(bounds, counts, 0.50) == 1.0
        assert bucket_quantile(bounds, counts, 0.90) == 4.0

    def test_overflow_rank_is_none(self):
        assert bucket_quantile([1.0], [1, 9], 0.99) is None

    def test_merge_bucket_series(self):
        merged = merge_bucket_series(
            [
                {"buckets": [1, 0, 2], "sum": 5.0, "count": 3},
                {"buckets": [0, 4, 1], "sum": 9.0, "count": 5},
            ]
        )
        assert merged == {"buckets": [1, 4, 3], "sum": 14.0, "count": 8}


class TestLatencyTracker:
    def test_round0_deliveries_are_zero_latency(self):
        tracker = LatencyTracker(scheme="one")
        for i in range(4):
            tracker.observe_delivery(f"m{i}", epoch=1, latency=0.0)
        tracker.observe_delivery("slow", epoch=1, latency=3.5)
        stats = tracker.epoch_percentiles(1)
        assert stats["members"] == 5
        assert stats["p50"] == 0.0
        assert stats["p99"] == 3.5
        assert stats["max"] == 3.5

    def test_resync_closes_the_open_interval(self):
        tracker = LatencyTracker(scheme="one")
        tracker.open_interval("m", epoch=2, opened_at=100.0)
        assert tracker.open_count == 1
        latency = tracker.close_resync("m", now=160.0)
        assert latency == pytest.approx(60.0)
        assert tracker.open_count == 0
        # The interval landed in its opening epoch's distribution.
        assert tracker.epoch_percentiles(2)["max"] == 60.0

    def test_open_interval_keeps_the_earliest(self):
        tracker = LatencyTracker()
        tracker.open_interval("m", epoch=2, opened_at=100.0)
        tracker.open_interval("m", epoch=3, opened_at=500.0)
        assert tracker.close_resync("m", now=600.0) == pytest.approx(500.0)

    def test_close_without_open_is_a_noop(self):
        tracker = LatencyTracker()
        assert tracker.close_resync("ghost", now=5.0) is None
        assert tracker.close_abandoned("ghost", now=5.0, reason="departed") is None

    def test_abandoned_excluded_from_percentiles(self):
        tracker = LatencyTracker()
        tracker.observe_delivery("a", epoch=1, latency=0.0)
        tracker.open_interval("b", epoch=1, opened_at=60.0)
        tracker.close_abandoned("b", now=400.0, reason="departed")
        stats = tracker.epoch_percentiles(1)
        assert stats["members"] == 1
        assert stats["max"] == 0.0
        summary = tracker.summary()
        assert summary["abandoned_unrecovered"] == 1
        assert summary["count"] == 1

    def test_finish_closes_leaks(self):
        tracker = LatencyTracker()
        tracker.open_interval("m1", epoch=1, opened_at=10.0)
        tracker.open_interval("m2", epoch=2, opened_at=20.0)
        assert tracker.finish(now=100.0) == 2
        assert tracker.open_count == 0
        assert tracker.summary()["abandoned_unrecovered"] == 2

    def test_summary_quantiles_and_worst(self):
        tracker = LatencyTracker()
        for i in range(98):
            tracker.observe_delivery(f"m{i}", epoch=1, latency=0.0)
        tracker.observe_delivery("late", epoch=1, latency=5.0)
        tracker.open_interval("worst", epoch=1, opened_at=0.0)
        tracker.close_resync("worst", now=90.0)
        summary = tracker.summary()
        assert summary["count"] == 100
        assert summary["p50_s"] == 0.0
        assert summary["p99_s"] == 5.0
        assert summary["max_s"] == 90.0
        assert summary["late"] == 1
        assert summary["resyncs"] == 1
        assert summary["worst"][0] == {
            "member": "worst", "epoch": 1, "latency_s": 90.0, "state": "resync",
        }

    def test_histogram_series_labeled_by_scheme_shard_state(self):
        registry = MetricsRegistry()
        with obs_metrics.collecting(registry):
            tracker = LatencyTracker(
                scheme="sharded-keytree", shard_fn=lambda m: "2"
            )
            tracker.observe_delivery("a", epoch=1, latency=0.0)
            tracker.observe_delivery("b", epoch=1, latency=1.5)
            tracker.open_interval("c", epoch=1, opened_at=0.0)
            tracker.close_resync("c", now=30.0)
        entry = registry.to_json()[LATENCY_METRIC]
        assert entry["labels"] == ["scheme", "shard", "sync_state"]
        states = {key.split("|")[2] for key in entry["series"]}
        assert states == {"delivered", "late", "resync"}
        assert all(key.startswith("sharded-keytree|2|") for key in entry["series"])

    def test_events_emitted_only_under_an_active_log(self):
        tracker = LatencyTracker()
        # No active log: recording still works, nothing raises.
        tracker.observe_delivery("a", epoch=1, latency=2.0)
        with obs.observe(clock=lambda: 0.0) as bundle:
            tracker.observe_delivery("b", epoch=1, latency=2.0)
            tracker.open_interval("c", epoch=1, opened_at=0.0)
            tracker.close_resync("c", now=9.0)
            tracker.open_interval("d", epoch=1, opened_at=0.0)
            tracker.close_abandoned("d", now=5.0, reason="departed")
            tracker.epoch_complete(1)
        types = [r["type"] for r in bundle.events.records]
        assert types.count("dek_adopted") == 2  # late + resync, never zero
        assert types.count("resync_complete") == 1
        assert types.count("abandoned_unrecovered") == 1
        assert types.count("epoch_latency") == 1

    def test_registry_merge_sums_latency_series(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        for registry, latencies in ((main, [0.0, 3.0]), (worker, [3.0, 700.0])):
            with obs_metrics.collecting(registry):
                tracker = LatencyTracker(scheme="one")
                for i, latency in enumerate(latencies):
                    tracker.observe_delivery(f"m{i}", epoch=1, latency=latency)
        main.merge(worker.snapshot())
        merged = main.to_json()[LATENCY_METRIC]
        late = merged["series"]["one|0|late"]
        assert late["count"] == 3
        assert late["sum"] == pytest.approx(706.0)


def _sharded_latency_snapshot(workers: int, backend: str):
    from repro.server.sharded import ShardedOneTreeServer

    server = ShardedOneTreeServer(shards=4, workers=workers, backend=backend)
    config = SimulationConfig(
        arrival_rate=1.0,
        rekey_period=60.0,
        horizon=480.0,
        duration_model=TwoClassDuration(180.0, 2400.0, 0.7),
        loss_population=LossPopulation.two_point(),
        transport=WkaBkrProtocol(keys_per_packet=16),
        verify=False,
        seed=11,
    )
    try:
        with obs.observe() as bundle:
            GroupRekeyingSimulation(server, config).run()
    finally:
        server.close()
    return bundle.registry.to_json().get(LATENCY_METRIC)


class TestShardedLatencyMerge:
    def test_workers4_histogram_matches_serial_byte_for_byte(self):
        serial = _sharded_latency_snapshot(workers=1, backend="serial")
        pooled = _sharded_latency_snapshot(workers=4, backend="thread")
        assert serial is not None and serial["series"], "no latency observed"
        # Shard labels must be real shard indices, not the "0" fallback.
        shards = {key.split("|")[1] for key in serial["series"]}
        assert len(shards) > 1
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )


class TestChaosLatencyBattery:
    def test_blackout_abandonments_all_reach_a_terminal(self):
        from repro.faults.chaos import run_chaos_case

        with obs.observe() as bundle:
            entry = run_chaos_case(
                "one", "blackout-resync", seed=7, horizon=900.0
            )
        counts = {}
        for record in bundle.events.records:
            counts[record["type"]] = counts.get(record["type"], 0) + 1
        abandonments = counts.get("abandonment", 0)
        assert abandonments > 0, "schedule produced no abandonments"
        assert abandonments == (
            counts.get("resync_complete", 0)
            + counts.get("abandoned_unrecovered", 0)
        )
        ttd = entry["time_to_new_dek"]
        assert ttd["open"] == 0
        assert ttd["count"] > 0
        assert ttd["resyncs"] + ttd["abandoned_unrecovered"] == abandonments
        assert ttd["p99_s"] >= ttd["p50_s"] >= 0.0
        # The registry double-books the same stories.
        hist = bundle.registry.to_json()[LATENCY_METRIC]
        by_state = {}
        for key, slot in hist["series"].items():
            state = key.split("|")[2]
            by_state[state] = by_state.get(state, 0) + slot["count"]
        assert by_state.get("resync", 0) == ttd["resyncs"]
        assert by_state.get("abandoned", 0) == ttd["abandoned_unrecovered"]
        assert hist["buckets"] == list(LATENCY_LOG_BUCKETS_S)
