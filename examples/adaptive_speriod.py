"""Section 3.4's adaptive loop: estimate the workload, pick the scheme.

The key server starts with no knowledge of its audience.  It watches
completed membership durations, fits the two-class exponential mixture by
EM, and asks the analytic model which scheme/S-period minimizes rekeying
bandwidth at the current group size — re-deciding as more data arrives.

Run:  python examples/adaptive_speriod.py
"""

import random

from repro import AdaptiveController, TwoClassDuration

TRUE_SHORT_MEAN = 180.0  # 3 minutes
TRUE_LONG_MEAN = 10_800.0  # 3 hours
TRUE_ALPHA = 0.8
GROUP_SIZE = 65_536


def main() -> None:
    rng = random.Random(2003)
    model = TwoClassDuration(TRUE_SHORT_MEAN, TRUE_LONG_MEAN, TRUE_ALPHA)
    controller = AdaptiveController(rekey_period=60.0, degree=4, min_samples=50)

    print(f"true workload: Ms={TRUE_SHORT_MEAN:.0f}s  Ml={TRUE_LONG_MEAN:.0f}s  "
          f"alpha={TRUE_ALPHA}")
    print(f"{'samples':>8s} {'Ms-hat':>8s} {'Ml-hat':>9s} {'alpha-hat':>9s} "
          f"{'recommendation':>20s}")

    observed = 0
    for checkpoint in (50, 200, 1000, 5000):
        while observed < checkpoint:
            member_id = f"m{observed}"
            join_time = observed * 0.5
            duration, __ = model.sample_with_class(rng)
            controller.observe_join(member_id, join_time)
            controller.observe_leave(member_id, join_time + duration)
            observed += 1
        estimate = controller.estimate()
        recommendation = controller.recommend(group_size=GROUP_SIZE)
        assert recommendation is not None
        print(f"{checkpoint:8d} {estimate.short_mean:8.1f} "
              f"{estimate.long_mean:9.1f} {estimate.alpha:9.3f} "
              f"{recommendation.scheme + '@K=' + str(recommendation.k_periods):>20s}")

    # Show the model costs behind the final decision.
    recommendation = controller.recommend(group_size=GROUP_SIZE)
    assert recommendation is not None
    interesting = {
        k: v
        for k, v in recommendation.predicted_costs.items()
        if k == "one-keytree" or k.endswith(f"K={recommendation.k_periods}")
    }
    print("\npredicted per-period costs at the decision point:")
    for name, cost in sorted(interesting.items(), key=lambda kv: kv[1]):
        print(f"  {name:20s} {cost:10.1f} keys")

    # A stable audience should keep the one-keytree scheme (Section 3.4).
    stable = AdaptiveController(rekey_period=60.0, degree=4, min_samples=50)
    stable_model = TwoClassDuration(7_200.0, 14_400.0, 0.2)
    for i in range(1000):
        duration, __ = stable_model.sample_with_class(rng)
        stable.observe_join(f"s{i}", i * 1.0)
        stable.observe_leave(f"s{i}", i * 1.0 + duration)
    decision = stable.recommend(group_size=GROUP_SIZE)
    assert decision is not None
    print(f"\nstable-audience control: recommended scheme = {decision.scheme} "
          f"(paper: 'For applications that have very stable memberships, "
          f"the one-keytree scheme is preferred')")


if __name__ == "__main__":
    main()
