"""MARKS for a pre-planned pay-per-view event.

When subscribers buy access to a known time window *in advance* (a match,
a concert), the MARKS key sequence [Briscoe99] — from the paper's Section
1 survey — needs no group rekeying at all: every subscriber derives the
per-minute keys of exactly the window it paid for from a logarithmic
number of seeds delivered at purchase time.

The example sells three tickets, streams a 64-minute event, and shows who
can decrypt which minute — including the refused minute 40 for the
half-time-only customer.

Run:  python examples/marks_preplanned_session.py
"""

from repro.crypto import encrypt
from repro.keytree.marks import MarksKeySequence, MarksReceiver

MINUTES = 64  # 2**6 slots, one per minute


def main() -> None:
    sequence = MarksKeySequence(depth=6)
    print(f"event: {MINUTES} one-minute slots, keys derived from one seed tree")

    tickets = {
        "full-match": (0, 64),
        "first-half": (0, 32),
        "final-15": (49, 64),
    }
    receivers = {}
    for name, (start, end) in tickets.items():
        grant = sequence.grant(start, end)
        receivers[name] = MarksReceiver(sequence.depth, grant)
        print(f"  ticket {name:11s} [{start:2d}, {end:2d})  "
              f"{len(grant)} seeds over unicast — zero multicast keys")

    # Stream a few representative minutes.
    for minute in (0, 20, 40, 60):
        key = sequence.slot_key(minute)
        blob = encrypt(key.secret, minute.to_bytes(4, "big"), b"frame")
        viewers = []
        for name, receiver in receivers.items():
            try:
                derived = receiver.slot_key(minute)
            except KeyError:
                continue
            assert derived == key
            viewers.append(name)
        print(f"minute {minute:2d}: decrypted by {', '.join(viewers) or 'nobody'}")

    print("\ntrade-off vs the paper's LKH-based schemes: MARKS costs zero "
          "rekeying\nbandwidth but cannot admit unplanned joins or evict "
          "early — for dynamic\ngroups the two-partition LKH server remains "
          "the tool (see\nbenchmarks/test_bench_marks_vs_lkh.py for the "
          "quantified comparison).")


if __name__ == "__main__":
    main()
