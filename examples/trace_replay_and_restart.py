"""Trace-driven replay with a key-server restart in the middle.

Generates a synthetic MBone-style membership trace, replays it through a
TT-scheme server with periodic batched rekeying, snapshots the server to
JSON halfway through the session, "crashes", restores from the snapshot,
and finishes the session — demonstrating that

* recorded traces drive the system deterministically, and
* a restart is invisible to members: nobody re-registers, nobody loses
  access, evicted members stay evicted.

Run:  python examples/trace_replay_and_restart.py
"""

import json
import tempfile
from pathlib import Path

from repro import Member, TwoPartitionServer
from repro.members.trace import MBoneTraceGenerator, trace_statistics, write_trace, read_trace
from repro.members.durations import TwoClassDuration
from repro.server.snapshot import restore_server, snapshot_server

REKEY_PERIOD = 60.0
SESSION = 1800.0


def replay_window(server, records, members, start, end):
    """Replay joins/leaves in [start, end) with a rekey at every period."""
    keys_sent = 0
    events = []
    for r in records:
        if start <= r.join_time < end:
            events.append((r.join_time, "join", r.member_id))
        if start <= r.leave_time < end and r.leave_time < SESSION:
            events.append((r.leave_time, "leave", r.member_id))
    events.sort()
    cursor = 0
    t = start + REKEY_PERIOD - (start % REKEY_PERIOD or REKEY_PERIOD)
    while t <= end:
        while cursor < len(events) and events[cursor][0] <= t:
            __, kind, member_id = events[cursor]
            cursor += 1
            if kind == "join":
                reg = server.join(member_id, at_time=events[cursor - 1][0])
                members[member_id] = Member(member_id, reg.individual_key)
            elif member_id in server or member_id in members:
                try:
                    server.leave(member_id, at_time=events[cursor - 1][0])
                except KeyError:
                    pass
                members.pop(member_id, None)
        result = server.rekey(now=t)
        keys_sent += result.cost
        for member in members.values():
            member.absorb(result.encrypted_keys)
        t += REKEY_PERIOD
    return keys_sent


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "session.trace"
        generator = MBoneTraceGenerator(
            duration_model=TwoClassDuration(180.0, 3600.0, 0.8),
            arrival_rate=0.8,
            seed=9,
        )
        records = generator.generate(SESSION)
        write_trace(records, trace_path)
        stats = trace_statistics(read_trace(trace_path))
        print(f"trace: {stats.members} members, mean duration "
              f"{stats.mean_duration:.0f}s, median {stats.median_duration:.0f}s, "
              f"peak concurrency {stats.max_concurrency}")

        server = TwoPartitionServer(mode="tt", s_period=300.0)
        members = {}
        first_half = replay_window(server, records, members, 0.0, SESSION / 2)
        print(f"[t=900] first half replayed: {first_half} keys multicast, "
              f"{server.size} members (S={server.s_size}, L={server.l_size})")

        # --- crash & restore --------------------------------------------
        snapshot_path = Path(tmp) / "server.snapshot.json"
        snapshot_path.write_text(json.dumps(snapshot_server(server)))
        print(f"[t=900] snapshot written "
              f"({snapshot_path.stat().st_size / 1024:.0f} KiB) — simulating a crash")
        del server
        server = restore_server(json.loads(snapshot_path.read_text()))
        print(f"[t=900] restored: {server.size} members, group key "
              f"{server.group_key().key_id}#{server.group_key().version}")

        second_half = replay_window(
            server, records, members, SESSION / 2, SESSION
        )
        print(f"[t=1800] second half replayed: {second_half} keys multicast, "
              f"{server.size} members")

        dek = server.group_key()
        holders = sum(
            1 for m in members.values() if m.holds(dek.key_id, dek.version)
        )
        assert holders == len(members) == server.size
        print(f"[t=1800] all {holders} present members hold the current group "
              f"key — the restart was invisible ✔")


if __name__ == "__main__":
    main()
