"""A pay-per-view session: one-keytree vs the two-partition schemes.

Simulates the workload the paper's introduction motivates — a large
audience where most viewers sample the stream briefly (class Cs, mean 3
minutes) and a core stays for hours (class Cl) — and measures the actual
per-period rekeying bandwidth of every scheme on the same arrival seed.

Run:  python examples/two_partition_pay_per_view.py

Set REPRO_EXAMPLE_FAST=1 for a seconds-scale run (smaller audience and
horizon; the numbers are noisier but the mechanics are identical) — the
test suite's smoke runner uses this.
"""

import os

from repro import OneTreeServer, TwoPartitionServer
from repro.analysis.twopartition import TwoPartitionParameters, scheme_costs
from repro.members import TwoClassDuration
from repro.sim import GroupRekeyingSimulation, SimulationConfig

FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
REKEY_PERIOD = 60.0
K_PERIODS = 5
ALPHA = 0.85
SHORT_MEAN = 180.0
LONG_MEAN = 7_200.0
ARRIVAL_RATE = 0.5 if FAST else 4.0  # joins per second
HORIZON = (12 if FAST else 90) * REKEY_PERIOD
WARMUP = 4 if FAST else 45  # periods to discard


def build_servers():
    s_period = K_PERIODS * REKEY_PERIOD
    return {
        "one-keytree": OneTreeServer(degree=4),
        "QT-scheme": TwoPartitionServer(mode="qt", s_period=s_period, degree=4),
        "TT-scheme": TwoPartitionServer(mode="tt", s_period=s_period, degree=4),
        "PT-scheme": TwoPartitionServer(mode="pt", degree=4),
    }


def main() -> None:
    durations = TwoClassDuration(SHORT_MEAN, LONG_MEAN, ALPHA)
    print(f"workload: alpha={ALPHA}, Ms={SHORT_MEAN:.0f}s, Ml={LONG_MEAN:.0f}s, "
          f"{ARRIVAL_RATE:g} joins/s, Tp={REKEY_PERIOD:.0f}s, K={K_PERIODS}")
    print(f"{'scheme':14s} {'mean cost/period':>17s} {'vs one-keytree':>15s} "
          f"{'group size':>11s}")

    baseline = None
    measured = {}
    for name, server in build_servers().items():
        config = SimulationConfig(
            arrival_rate=ARRIVAL_RATE,
            rekey_period=REKEY_PERIOD,
            horizon=HORIZON,
            duration_model=durations,
            verify=False,  # verification is O(members) per period; see tests
            seed=42,
        )
        metrics = GroupRekeyingSimulation(server, config).run()
        cost = metrics.mean_cost(skip=WARMUP)
        measured[name] = cost
        if baseline is None:
            baseline = cost
        gain = (baseline - cost) / baseline * 100
        print(f"{name:14s} {cost:17.1f} {gain:14.1f}% "
              f"{metrics.mean_group_size(skip=WARMUP):11.0f}")

    # Compare with the Section 3.3 analytic model at the simulated scale.
    mean_size = ARRIVAL_RATE * (ALPHA * SHORT_MEAN + (1 - ALPHA) * LONG_MEAN)
    params = TwoPartitionParameters(
        group_size=mean_size,
        degree=4,
        rekey_period=REKEY_PERIOD,
        k_periods=K_PERIODS,
        short_mean=SHORT_MEAN,
        long_mean=LONG_MEAN,
        alpha=ALPHA,
    )
    print("\nanalytic model at the same operating point:")
    model = scheme_costs(params)
    for name, cost in model.items():
        line = f"  {name:14s} predicted {cost:9.1f}"
        if name in measured:
            line += f"   simulated {measured[name]:9.1f}"
        print(line)


if __name__ == "__main__":
    main()
