"""Quickstart: a two-partition key server end to end.

Builds a TT-scheme server, admits members, processes batched rekeyings,
migrates a long-stayer into the L-partition, evicts a member, and shows —
with real ciphertexts — that the evicted member can no longer read group
traffic while everyone else can.

Run:  python examples/quickstart.py
"""

from repro import Member, TwoPartitionServer
from repro.crypto import AuthenticationError, encrypt


def main() -> None:
    # A TT-scheme server: tree-structured S- and L-partitions, members
    # migrate to the L-partition after staying 120 s (Ts = 2 periods of 60 s).
    server = TwoPartitionServer(mode="tt", s_period=120.0, degree=4)

    # --- period 1: ten members join --------------------------------------
    members = {}
    for i in range(10):
        registration = server.join(f"user{i}", at_time=0.0)
        members[f"user{i}"] = Member(f"user{i}", registration.individual_key)

    batch = server.rekey(now=60.0)
    print(f"[t=60] admitted {len(batch.joined)} members, "
          f"{batch.cost} encrypted keys {batch.breakdown}")
    for member in members.values():
        member.absorb(batch.encrypted_keys)

    # Everyone can decrypt group traffic now.
    dek = server.group_key()
    ciphertext = encrypt(dek.secret, b"t60", b"pay-per-view frame #1")
    for name, member in members.items():
        assert member.decrypt_data(dek.key_id, b"t60", ciphertext) == b"pay-per-view frame #1"
    print(f"[t=60] all {len(members)} members decrypt traffic under {dek.key_id}#{dek.version}")

    # --- period 2: one member leaves --------------------------------------
    server.leave("user3", at_time=90.0)
    evicted = members.pop("user3")
    batch = server.rekey(now=120.0)
    print(f"[t=120] departure processed, {batch.cost} encrypted keys {batch.breakdown}")
    for member in members.values():
        member.absorb(batch.encrypted_keys)

    dek = server.group_key()
    ciphertext = encrypt(dek.secret, b"t120", b"pay-per-view frame #2")
    for member in members.values():
        assert member.decrypt_data(dek.key_id, b"t120", ciphertext) == b"pay-per-view frame #2"
    try:
        evicted.decrypt_data(dek.key_id, b"t120", ciphertext)
        raise SystemExit("FORWARD SECRECY BROKEN")
    except (AuthenticationError, KeyError):
        print("[t=120] evicted user3 cannot decrypt post-departure traffic ✔")

    # --- period 3: survivors migrate to the L-partition -------------------
    batch = server.rekey(now=180.0)
    print(f"[t=180] migrated {len(batch.migrated)} members to the L-partition, "
          f"{batch.cost} encrypted keys {batch.breakdown}")
    for member in members.values():
        member.absorb(batch.encrypted_keys)
    print(f"        S-partition now holds {server.s_size}, "
          f"L-partition {server.l_size} members")

    # Migration must not break anyone's access.
    dek = server.group_key()
    ciphertext = encrypt(dek.secret, b"t180", b"pay-per-view frame #3")
    for member in members.values():
        assert member.decrypt_data(dek.key_id, b"t180", ciphertext) == b"pay-per-view frame #3"
    print("[t=180] all migrated members still decrypt traffic ✔")


if __name__ == "__main__":
    main()
