"""Cross-validate the paper's analytic models against the simulator.

The paper evaluates analytically only; this example runs the real system —
key trees, batched rekeying, two-partition servers, WKA-BKR over a lossy
channel — at laptop scale and prints predicted vs measured costs for each
model (Appendix A, Section 3.3, Appendix B).

Run:  python examples/model_vs_simulation.py

Set REPRO_EXAMPLE_FAST=1 to validate two small configurations only (the
same ones ``repro validate --fast`` uses) — the test suite's smoke runner
uses this.
"""

import os


def _validations():
    from repro.experiments.validation import (
        run_all_validations,
        validate_batch_cost,
        validate_wka_transport,
    )

    if os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0"):
        return {
            "batch-cost": validate_batch_cost(
                group_size=256, departures=16, batches=10
            ),
            "wka-transport": validate_wka_transport(
                group_size=128, departures=8, trials=5
            ),
        }
    return run_all_validations()


def main() -> None:
    print("model-vs-simulation cross validation "
          "(trees are real, not the model's idealized full trees;\n"
          " agreement within ~15% is the expectation)\n")
    worst = 0.0
    for name, result in _validations().items():
        print(f"{name:14s} {result}")
        worst = max(worst, result.relative_error)
    print(f"\nworst relative error: {worst * 100:.1f}%")


if __name__ == "__main__":
    main()
