"""Cross-validate the paper's analytic models against the simulator.

The paper evaluates analytically only; this example runs the real system —
key trees, batched rekeying, two-partition servers, WKA-BKR over a lossy
channel — at laptop scale and prints predicted vs measured costs for each
model (Appendix A, Section 3.3, Appendix B).

Run:  python examples/model_vs_simulation.py
"""

from repro.experiments.validation import run_all_validations


def main() -> None:
    print("model-vs-simulation cross validation "
          "(trees are real, not the model's idealized full trees;\n"
          " agreement within ~15% is the expectation)\n")
    worst = 0.0
    for name, result in run_all_validations().items():
        print(f"{name:14s} {result}")
        worst = max(worst, result.relative_error)
    print(f"\nworst relative error: {worst * 100:.1f}%")


if __name__ == "__main__":
    main()
