"""Loss-aware key-tree organization over a lossy multicast channel.

A fifth of the audience sits behind lossy links (20% loss); the rest see
2%.  The same workload is served by a one-keytree server, a two-random-
keytree control, and the loss-homogenized server, all delivering their
rekey payloads with WKA-BKR over the simulated channel — the measured
metric is *keys on the wire*, replication and retransmission included
(Section 4's metric).

Run:  python examples/loss_aware_rekeying.py

Set REPRO_EXAMPLE_FAST=1 for a seconds-scale run (smaller audience and
horizon; the numbers are noisier but the mechanics are identical) — the
test suite's smoke runner uses this.
"""

import os

from repro import LossHomogenizedServer, OneTreeServer, WkaBkrProtocol
from repro.members import LossPopulation, TwoClassDuration
from repro.sim import GroupRekeyingSimulation, SimulationConfig

FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
HIGH_LOSS = 0.20
LOW_LOSS = 0.02
HIGH_FRACTION = 0.2
REKEY_PERIOD = 60.0
HORIZON = (10 if FAST else 60) * REKEY_PERIOD
WARMUP = 2 if FAST else 20
ARRIVAL_RATE = 0.5 if FAST else 2.0


def build_servers():
    return {
        "one-keytree": OneTreeServer(degree=4),
        "two-random-keytrees": LossHomogenizedServer(
            class_rates=(HIGH_LOSS, LOW_LOSS), placement="random", degree=4
        ),
        "loss-homogenized": LossHomogenizedServer(
            class_rates=(HIGH_LOSS, LOW_LOSS), placement="loss", degree=4
        ),
    }


def main() -> None:
    population = LossPopulation.two_point(HIGH_LOSS, LOW_LOSS, HIGH_FRACTION)
    durations = TwoClassDuration(short_mean=600.0, long_mean=3600.0, alpha=0.5)
    print(f"population: {HIGH_FRACTION:.0%} of receivers at {HIGH_LOSS:.0%} loss, "
          f"rest at {LOW_LOSS:.0%}; transport: WKA-BKR")
    print(f"{'scheme':22s} {'server keys':>12s} {'wire keys':>10s} "
          f"{'wire/server':>11s} {'vs one-keytree':>15s}")

    baseline = None
    for name, server in build_servers().items():
        config = SimulationConfig(
            arrival_rate=ARRIVAL_RATE,
            rekey_period=REKEY_PERIOD,
            horizon=HORIZON,
            duration_model=durations,
            loss_population=population,
            transport=WkaBkrProtocol(keys_per_packet=16),
            verify=False,
            seed=7,
        )
        metrics = GroupRekeyingSimulation(server, config).run()
        steady = metrics.records[WARMUP:]
        server_keys = sum(r.cost for r in steady)
        wire_keys = sum(r.transport_keys for r in steady)
        if baseline is None:
            baseline = wire_keys
        gain = (baseline - wire_keys) / baseline * 100
        print(f"{name:22s} {server_keys:12d} {wire_keys:10d} "
              f"{wire_keys / server_keys:11.2f} {gain:14.1f}%")

    print("\nexpectation (paper Fig. 6): random split ≈ slightly worse than "
          "one tree; homogenized saves up to ~12% at this population")


if __name__ == "__main__":
    main()
