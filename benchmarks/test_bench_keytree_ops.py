"""Micro-benchmarks: key-tree and rekeying throughput.

These time the real data-structure operations (with real key wrapping) a
production key server would run, giving the reproduction's substrate a
performance baseline.
"""

import random

from repro.crypto.material import KeyGenerator
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.tree import KeyTree

from bench_utils import emit


def build_tree(size, seed=0, degree=4):
    tree = KeyTree(degree=degree, keygen=KeyGenerator(seed))
    rekeyer = LkhRekeyer(tree)
    rekeyer.rekey_batch(joins=[(f"m{i}", None) for i in range(size)])
    return tree, rekeyer


def test_bulk_insertion_4096(benchmark):
    def build():
        tree, __ = build_tree(4096)
        return tree

    tree = benchmark(build)
    assert tree.size == 4096


def test_batch_rekey_64_departures_of_4096(benchmark):
    state = {}

    def setup():
        tree, rekeyer = build_tree(4096, seed=len(state))
        state[len(state)] = rekeyer
        victims = random.Random(0).sample(tree.members(), 64)
        return (rekeyer, victims), {}

    def run(rekeyer, victims):
        return rekeyer.rekey_batch(departures=victims)

    message = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert message.cost > 0


def test_individual_leave_from_4096(benchmark):
    state = {"i": 0}
    tree, rekeyer = build_tree(4096)

    def run():
        member = f"m{state['i']}"
        state["i"] += 1
        return rekeyer.leave(member)

    message = benchmark.pedantic(run, rounds=50, iterations=1)
    assert message.cost > 0
    emit(
        "keytree_ops",
        "Micro-benchmarks run; see the pytest-benchmark table for timings.",
    )
