"""Model-vs-simulation cross validation (our addition to the paper).

Times one full end-to-end simulated rekeying session and reports
predicted-vs-measured for every analytic model.
"""

from repro.experiments.validation import (
    validate_batch_cost,
    validate_two_partition,
    validate_wka_transport,
)

from bench_utils import emit


def test_validation_suite(benchmark):
    def run():
        return {
            "batch-cost": validate_batch_cost(group_size=512, departures=16, batches=10),
            "one-keytree": validate_two_partition("one", horizon_periods=160),
            "tt-scheme": validate_two_partition("tt", horizon_periods=160),
            "wka-transport": validate_wka_transport(trials=10),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Model-vs-simulation cross validation"]
    for name, result in results.items():
        lines.append(f"  {result}")
    emit("validation", "\n".join(lines))

    for name, result in results.items():
        assert result.relative_error < 0.20, name
