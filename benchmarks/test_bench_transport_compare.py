"""Transport comparison: multi-send vs WKA-BKR vs proactive FEC.

Reproduces the Section 2.2 landscape on identical simulated sessions:
WKA-BKR should show the lowest wire cost of the three in the paper's
mixed-loss scenario ([SZJ02]'s result, which Section 4 builds on).
"""

import random

from repro.crypto.material import KeyGenerator
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.tree import KeyTree
from repro.network.channel import MulticastChannel
from repro.network.loss import BernoulliLoss
from repro.transport.fec import ProactiveFecProtocol
from repro.transport.multisend import MultiSendProtocol
from repro.transport.session import build_task
from repro.transport.wka_bkr import WkaBkrProtocol

from bench_utils import emit

GROUP = 512
DEPARTURES = 24
HIGH_LOSS, LOW_LOSS, HIGH_FRACTION = 0.20, 0.02, 0.2
TRIALS = 5


def run_protocol(protocol) -> int:
    total = 0
    for trial in range(TRIALS):
        tree = KeyTree(degree=4, keygen=KeyGenerator(trial))
        rekeyer = LkhRekeyer(tree)
        members = [f"m{i}" for i in range(GROUP)]
        rekeyer.rekey_batch(joins=[(m, None) for m in members])
        held = {
            m: {n.key.key_id: n.key.version for n in tree.path_of(m)}
            for m in members
        }
        rng = random.Random(trial)
        victims = rng.sample(members, DEPARTURES)
        message = rekeyer.rekey_batch(departures=victims)
        survivors = [m for m in members if m not in victims]
        task = build_task(message, {m: held[m] for m in survivors})
        channel = MulticastChannel(seed=500 + trial)
        for i, m in enumerate(survivors):
            rate = HIGH_LOSS if rng.random() < HIGH_FRACTION else LOW_LOSS
            channel.subscribe(m, BernoulliLoss(rate))
        outcome = protocol.run(task, channel)
        assert outcome.satisfied
        total += outcome.keys_sent
    return total


def test_transport_comparison(benchmark):
    protocols = {
        "multi-send(x2)": MultiSendProtocol(keys_per_packet=16, replication=2),
        "wka-bkr": WkaBkrProtocol(keys_per_packet=16),
        "proactive-fec": ProactiveFecProtocol(keys_per_packet=16, block_size=8),
    }
    results = benchmark.pedantic(
        lambda: {name: run_protocol(p) for name, p in protocols.items()},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"Transport comparison — wire keys over {TRIALS} sessions "
        f"(N={GROUP}, L={DEPARTURES}, {HIGH_FRACTION:.0%} at {HIGH_LOSS:.0%} loss)"
    ]
    for name, keys in results.items():
        lines.append(f"  {name:15s} {keys:8d} keys")
    emit("transport_compare", "\n".join(lines))

    # [SZJ02]: WKA-BKR beats blanket replication in mixed-loss scenarios.
    assert results["wka-bkr"] < results["multi-send(x2)"]
