"""Extension benchmark: OFT vs binary LKH per-eviction bandwidth.

The paper notes its optimizations apply to OFT-style trees too; this
benchmark grounds the comparison: OFT delivers ~h blinded keys per
eviction where binary LKH delivers ~2h wraps ([BM00]'s halving).
"""

from repro.crypto.material import KeyGenerator
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.oft import OneWayFunctionTree
from repro.keytree.tree import KeyTree

from bench_utils import emit

GROUP = 256
EVICTIONS = 32


def measure():
    oft = OneWayFunctionTree(keygen=KeyGenerator(2))
    for i in range(GROUP):
        oft.join(f"m{i}")
    oft_cost = sum(oft.leave(f"m{i}").cost for i in range(EVICTIONS))

    tree = KeyTree(degree=2, keygen=KeyGenerator(2))
    lkh = LkhRekeyer(tree)
    lkh.rekey_batch(joins=[(f"m{i}", None) for i in range(GROUP)])
    lkh_cost = sum(lkh.leave(f"m{i}").cost for i in range(EVICTIONS))
    return {"oft": oft_cost, "lkh-d2": lkh_cost}


def test_oft_vs_lkh(benchmark):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"Extension — OFT vs binary LKH, {EVICTIONS} sequential evictions "
        f"from a {GROUP}-member group (keys multicast)"
    ]
    for name, cost in results.items():
        lines.append(f"  {name}: {cost} keys")
    lines.append(
        f"  ratio: {results['lkh-d2'] / results['oft']:.2f}x (theory ≈ 2x)"
    )
    emit("oft_vs_lkh", "\n".join(lines))

    assert results["oft"] < results["lkh-d2"]
    assert 1.3 < results["lkh-d2"] / results["oft"] < 3.0
