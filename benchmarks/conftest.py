"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) and, besides timing it, writes the regenerated rows to
``benchmarks/out/<name>.txt`` so the reproduction artifacts survive the
run (pytest captures stdout by default).

The suite also records each benchmark's wall-clock (the ``call`` phase
duration pytest already measures) into a session-scoped
``benchmarks/out/bench_times.json``, so timing drift across PRs can be
diffed without re-reading terminal output.
"""

import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).parent
OUT_DIR = BENCH_DIR / "out"
TIMES_FILE = OUT_DIR / "bench_times.json"

sys.path.insert(0, str(BENCH_DIR))
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from repro.perf.timesfile import merge_update  # noqa: E402

_bench_times = {}
_session_start = None


def pytest_configure(config):
    global _session_start
    OUT_DIR.mkdir(exist_ok=True)
    _session_start = time.time()


def pytest_runtest_logreport(report):
    # One entry per benchmark: the body ("call" phase) wall-clock.
    if report.when == "call":
        _bench_times[report.nodeid] = round(report.duration, 4)


def pytest_sessionfinish(session, exitstatus):
    if not _bench_times:
        return
    # Atomic merge-preserve of foreign keys (``python -m repro bench``
    # records its session under "repro_bench" in the same file).
    merge_update(
        TIMES_FILE,
        {
            "session_wall_s": (
                round(time.time() - _session_start, 4)
                if _session_start is not None
                else None
            ),
            "benchmarks": dict(sorted(_bench_times.items())),
        },
    )
