"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) and, besides timing it, writes the regenerated rows to
``benchmarks/out/<name>.txt`` so the reproduction artifacts survive the
run (pytest captures stdout by default).
"""

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
OUT_DIR = BENCH_DIR / "out"

sys.path.insert(0, str(BENCH_DIR))


def pytest_configure(config):
    OUT_DIR.mkdir(exist_ok=True)
