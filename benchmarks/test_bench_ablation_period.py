"""Ablation: rekey-period (Tp) sensitivity of the two-partition gains.

Batching amortizes more at longer periods; the ablation confirms the
partitioning gain survives across practical Tp choices (holding the
S-period Ts = K * Tp fixed at the Table 1 value of 600 s).
"""

from repro.analysis.twopartition import (
    TwoPartitionParameters,
    one_tree_cost,
    tt_cost,
)
from repro.experiments.report import Series

from bench_utils import emit

PERIODS = (15.0, 30.0, 60.0, 120.0, 300.0)
S_PERIOD = 600.0


def period_series() -> Series:
    series = Series(
        title="Ablation — rekey period Tp (Ts fixed at 600 s)",
        x_label="Tp",
        x_values=list(PERIODS),
    )
    base, tt, gain = [], [], []
    for period in PERIODS:
        params = TwoPartitionParameters(
            rekey_period=period, k_periods=int(S_PERIOD / period)
        )
        b = one_tree_cost(params)
        t = tt_cost(params)
        base.append(b)
        tt.append(t)
        gain.append((b - t) / b * 100)
    series.add_column("one-keytree", base)
    series.add_column("TT-scheme", tt)
    series.add_column("TT-gain-%", gain)
    return series


def test_period_ablation(benchmark):
    series = benchmark.pedantic(period_series, rounds=1, iterations=1)
    emit("ablation_period", series.format_table())

    # Longer periods process bigger batches (higher absolute cost per
    # rekeying) ...
    assert series.column("one-keytree") == sorted(series.column("one-keytree"))
    # ... but the partitioning gain persists throughout.
    assert all(g > 15.0 for g in series.column("TT-gain-%"))
