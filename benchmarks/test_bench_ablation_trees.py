"""Ablation: number of loss-homogenized trees under a 4-point population.

The paper uses two loss classes.  With a richer (4-point) loss population,
does finer partitioning keep paying?  Two trees already capture most of
the gain; four capture a bit more.
"""

from repro.analysis.losshomog import (
    TreeSpec,
    multi_tree_cost,
    one_keytree_cost,
)
from repro.experiments.report import Series

from bench_utils import emit

N, L, D = 65_536, 256, 4
# A 4-point population: rates and fractions.
POPULATION = ((0.30, 0.05), (0.20, 0.15), (0.05, 0.30), (0.01, 0.50))


def grouped_specs(groups):
    """Partition the 4 classes into ``groups`` trees (contiguous by rate);
    each tree's mixture reflects the classes pooled into it."""
    specs = []
    for group in groups:
        fraction = sum(POPULATION[i][1] for i in group)
        mixture = tuple(
            (POPULATION[i][0], POPULATION[i][1] / fraction) for i in group
        )
        specs.append(TreeSpec(size=N * fraction, mixture=mixture))
    return specs


def tree_count_series() -> Series:
    one = one_keytree_cost(N, L, POPULATION, D)
    two = multi_tree_cost(grouped_specs([(0, 1), (2, 3)]), L, D)
    four = multi_tree_cost(grouped_specs([(0,), (1,), (2,), (3,)]), L, D)
    series = Series(
        title="Ablation — number of loss-homogenized trees (4-point population)",
        x_label="trees",
        x_values=[1.0, 2.0, 4.0],
    )
    series.add_column("cost", [one, two, four])
    series.add_column(
        "gain-%", [0.0, (one - two) / one * 100, (one - four) / one * 100]
    )
    return series


def test_tree_count_ablation(benchmark):
    series = benchmark.pedantic(tree_count_series, rounds=1, iterations=1)
    emit("ablation_trees", series.format_table())

    costs = series.column("cost")
    assert costs[1] < costs[0]  # two trees beat one
    assert costs[2] < costs[1]  # four trees beat two (diminishing returns)
    gains = series.column("gain-%")
    assert gains[2] - gains[1] < gains[1] - gains[0]
