"""Ablation: where the QT/TT crossover sits.

The paper states the QT-scheme "is advantageous when the S-partition has a
small number of members" and the TT-scheme when it is large.  Sweeping K
moves the steady-state S-partition occupancy, exposing the crossover.
"""

from repro.analysis.twopartition import (
    TwoPartitionParameters,
    qt_cost,
    steady_state,
    tt_cost,
)
from repro.experiments.report import Series

from bench_utils import emit


def crossover_series() -> Series:
    k_values = list(range(1, 21))
    series = Series(
        title="Ablation — QT vs TT across S-partition occupancy (K sweep)",
        x_label="K",
        x_values=[float(k) for k in k_values],
    )
    ns, qt, tt = [], [], []
    for k in k_values:
        params = TwoPartitionParameters(k_periods=k)
        ns.append(steady_state(params).n_short)
        qt.append(qt_cost(params))
        tt.append(tt_cost(params))
    series.add_column("Ns", ns)
    series.add_column("QT-cost", qt)
    series.add_column("TT-cost", tt)
    return series


def test_qt_vs_tt_crossover(benchmark):
    series = benchmark.pedantic(crossover_series, rounds=1, iterations=1)
    emit("ablation_qt_vs_tt", series.format_table())

    qt = series.column("QT-cost")
    tt = series.column("TT-cost")
    # Small S-partition: the queue wins; large S-partition: the tree wins.
    assert qt[0] < tt[0]
    assert tt[-1] < qt[-1]
    # The crossover exists and is unique-ish: once TT leads it keeps it.
    lead = [t < q for q, t in zip(qt, tt)]
    first_tt = lead.index(True)
    assert all(lead[first_tt:])
