"""Extension benchmark: stateless (Complete Subtree) vs stateful (LKH).

The paper's survey includes Subset-Difference [MNL01] — stateless
receivers, broadcast size growing with the *cumulative* revoked set —
against which LKH trades receiver state updates for per-eviction costs
that never grow.  The benchmark revokes members one at a time and tracks
both schemes' per-round broadcast sizes to locate the crossover.
"""

import random

from repro.crypto.material import KeyGenerator
from repro.experiments.report import Series
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.subsetcover import CompleteSubtreeCenter
from repro.keytree.tree import KeyTree

from bench_utils import emit

CAPACITY_BITS = 9  # 512 slots
REVOCATIONS = 64


def measure() -> Series:
    rng = random.Random(6)
    order = rng.sample(range(1 << CAPACITY_BITS), REVOCATIONS)

    center = CompleteSubtreeCenter(depth=CAPACITY_BITS, keygen=KeyGenerator(6))
    session = KeyGenerator(7)
    tree = KeyTree(degree=2, keygen=KeyGenerator(8))
    rekeyer = LkhRekeyer(tree)
    rekeyer.rekey_batch(
        joins=[(f"m{i}", None) for i in range(1 << CAPACITY_BITS)]
    )

    checkpoints = [1, 2, 4, 8, 16, 32, 64]
    cs_sizes, lkh_sizes = [], []
    revoked_so_far = 0
    for i, slot in enumerate(order, start=1):
        center.revoke(slot)
        lkh_cost = rekeyer.leave(f"m{slot}").cost
        if i in checkpoints:
            cs_sizes.append(
                len(center.broadcast(session.generate("session", version=i)))
            )
            lkh_sizes.append(lkh_cost)
    series = Series(
        title=(
            "Extension — stateless Complete Subtree vs LKH "
            f"(N={1 << CAPACITY_BITS}, cumulative revocations)"
        ),
        x_label="revoked",
        x_values=[float(c) for c in checkpoints],
    )
    series.add_column("CS-broadcast-keys", cs_sizes)
    series.add_column("LKH-rekey-keys", lkh_sizes)
    series.notes.append(
        "CS receivers never update state (offline-safe); LKH receivers "
        "must follow every rekey but per-eviction cost stays flat"
    )
    return series


def test_stateless_vs_lkh(benchmark):
    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("stateless_vs_lkh", series.format_table())

    cs = series.column("CS-broadcast-keys")
    lkh = series.column("LKH-rekey-keys")
    # CS broadcast grows with the cumulative revoked set ...
    assert cs[-1] > cs[0]
    # ... while LKH per-eviction cost stays ~flat ...
    assert max(lkh) <= 2.5 * min(lkh)
    # ... so CS starts cheaper and ends costlier.
    assert cs[0] < lkh[0]
    assert cs[-1] > lkh[-1]
