"""Fig. 6: WKA-BKR rekeying cost vs fraction of high-loss receivers."""

from repro.experiments.fig6 import fig6_series
from repro.experiments.report import reduction_percent

from bench_utils import emit


def test_fig6_loss_heterogeneity_sweep(benchmark):
    series = benchmark.pedantic(fig6_series, rounds=1, iterations=1)
    emit("fig6", series.format_table(precision=2))

    one = series.column("one-keytree")
    rnd = series.column("two-random-keytrees")
    hom = series.column("two-loss-homogenized")
    # Endpoints coincide; random is never better than one tree; the
    # homogenized peak gain lands near the paper's 12.1%.
    assert abs(hom[0] - one[0]) < 1e-6
    assert abs(hom[-1] - one[-1]) < 1e-6
    assert all(r >= o - 1e-9 for r, o in zip(rnd, one))
    peak = max(reduction_percent(o, h) for o, h in zip(one, hom))
    assert 9.0 < peak < 15.0
