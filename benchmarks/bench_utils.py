"""Shared helpers for the benchmark suite."""

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a regenerated artifact and persist it under benchmarks/out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
