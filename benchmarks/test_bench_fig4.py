"""Fig. 4: rekeying cost vs the fraction of short-duration members."""

from repro.experiments.fig4 import fig4_series
from repro.experiments.report import reduction_percent

from bench_utils import emit


def test_fig4_alpha_sweep(benchmark):
    series = benchmark.pedantic(fig4_series, rounds=1, iterations=1)
    emit("fig4", series.format_table(precision=2))

    one = series.column("one-keytree")
    qt = series.column("QT-scheme")
    alphas = series.x_values
    # Crossover: partitioning loses at alpha <= 0.4, wins at alpha > 0.6.
    for x, base, cost in zip(alphas, one, qt):
        if x <= 0.4:
            assert cost >= base
        if 0.65 <= x <= 0.95:
            assert cost < base
    # Peak improvement ~31.4% near alpha = 0.9 (abstract headline).
    peak = max(
        reduction_percent(base, cost) for base, cost in zip(one, qt)
    )
    assert 28.0 < peak < 35.0
