"""Section 4.4's multi-group claim: receiver bandwidth and fairness."""

from repro.experiments.receiver_bandwidth import receiver_bandwidth_series

from bench_utils import emit


def test_receiver_bandwidth(benchmark):
    series = benchmark.pedantic(receiver_bandwidth_series, rounds=1, iterations=1)
    emit("receiver_bandwidth", series.format_table(precision=2))

    savings = series.column("receiver-saving-%")
    # Low-loss receivers shed a substantial share of heard keys at every
    # heterogeneity level, and the saving grows with the high-loss share
    # they no longer have to listen to.
    assert all(s > 5.0 for s in savings)
    assert savings[-1] > savings[0]
