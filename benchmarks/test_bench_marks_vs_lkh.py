"""Extension benchmark: MARKS vs batched LKH on a pre-planned workload.

MARKS [Briscoe99] (from the paper's Section 1 survey) costs *zero*
multicast rekey bandwidth when membership intervals are known in advance
— each subscriber gets <= 2·log2(T) seeds over unicast.  The comparison
grounds the trade the paper's two-partition scheme navigates: LKH-family
schemes pay multicast bandwidth to support *unplanned* departures, which
MARKS simply cannot express.
"""

from repro.crypto.material import KeyGenerator
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.marks import MarksKeySequence, MarksReceiver
from repro.keytree.tree import KeyTree
from repro.members.durations import TwoClassDuration
from repro.members.trace import MBoneTraceGenerator

from bench_utils import emit

SESSION = 3600.0
SLOT = 60.0  # one MARKS slot per rekey period
DEPTH = 6  # 64 slots


def measure():
    generator = MBoneTraceGenerator(
        duration_model=TwoClassDuration(300.0, 3600.0, 0.7),
        arrival_rate=0.3,
        seed=12,
    )
    records = generator.generate(SESSION)

    # --- MARKS: grants sized by each member's (pre-declared) interval.
    sequence = MarksKeySequence(depth=DEPTH, keygen=KeyGenerator(12))
    unicast_seeds = 0
    for r in records:
        start = int(r.join_time // SLOT)
        end = min(int(r.leave_time // SLOT) + 1, sequence.slots)
        grant = sequence.grant(start, end)
        unicast_seeds += len(grant)
        receiver = MarksReceiver(sequence.depth, grant)
        assert receiver.slot_key(start) == sequence.slot_key(start)

    # --- batched LKH: the same membership replayed through rekey batches.
    tree = KeyTree(degree=4, keygen=KeyGenerator(13))
    rekeyer = LkhRekeyer(tree)
    multicast_keys = 0
    events = sorted(
        [(r.join_time, "join", r.member_id) for r in records]
        + [
            (r.leave_time, "leave", r.member_id)
            for r in records
            if r.leave_time < SESSION
        ]
    )
    cursor = 0
    t = SLOT
    while t <= SESSION:
        joins, leaves = [], []
        while cursor < len(events) and events[cursor][0] <= t:
            __, kind, member = events[cursor]
            cursor += 1
            if kind == "join":
                joins.append((member, None))
            elif member in tree:
                leaves.append(member)
            else:
                joins = [j for j in joins if j[0] != member]
        multicast_keys += rekeyer.rekey_batch(joins=joins, departures=leaves).cost
        t += SLOT
    return {
        "members": len(records),
        "marks_unicast_seeds": unicast_seeds,
        "marks_multicast_keys": 0,
        "lkh_multicast_keys": multicast_keys,
    }


def test_marks_vs_lkh(benchmark):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"Extension — MARKS vs batched LKH, {results['members']} pre-planned "
        f"members over a {SESSION:.0f}s session ({DEPTH}-level sequence)"
    ]
    lines.append(
        f"  MARKS: {results['marks_multicast_keys']} multicast keys, "
        f"{results['marks_unicast_seeds']} unicast seeds "
        f"({results['marks_unicast_seeds'] / results['members']:.1f}/member)"
    )
    lines.append(f"  LKH:   {results['lkh_multicast_keys']} multicast keys")
    lines.append(
        "  caveat: MARKS requires intervals declared at join time and "
        "cannot evict early — the flexibility LKH's bandwidth buys"
    )
    emit("marks_vs_lkh", "\n".join(lines))

    assert results["marks_multicast_keys"] == 0
    assert results["lkh_multicast_keys"] > 0
    per_member = results["marks_unicast_seeds"] / results["members"]
    assert per_member <= 2 * DEPTH
