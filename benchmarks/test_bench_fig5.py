"""Fig. 5: relative rekeying-cost reduction vs group size."""

from repro.experiments.fig5 import fig5_series

from bench_utils import emit


def test_fig5_group_size_sweep(benchmark):
    series = benchmark.pedantic(fig5_series, rounds=1, iterations=1)
    emit("fig5", series.format_table(precision=4))

    for name in ("QT-scheme", "TT-scheme"):
        values = series.column(name)
        # Paper: >22% savings on average, nearly flat in N.
        assert sum(values) / len(values) > 0.22
        assert max(values) - min(values) < 0.05
