"""Table 1: default parameters, and the steady-state solve they feed.

The "benchmark" times the Section 3.3 steady-state computation at the
Table 1 operating point — the building block every two-partition figure
sweeps call hundreds of times.
"""

from repro.analysis.twopartition import steady_state
from repro.experiments.defaults import TABLE1, table1_rows

from bench_utils import emit


def test_table1_steady_state(benchmark):
    state = benchmark(steady_state, TABLE1)

    lines = ["Table 1 — default parameter values (and the implied steady state)"]
    for description, symbol, value in table1_rows():
        lines.append(f"  {description:32s} {symbol:>5s} = {value}")
    lines.append("  derived steady state:")
    lines.append(f"  {'joins per period':32s} {'J':>5s} = {state.joins:.1f}")
    lines.append(f"  {'S-partition population':32s} {'Ns':>5s} = {state.n_short:.1f}")
    lines.append(f"  {'L-partition population':32s} {'Nl':>5s} = {state.n_long:.1f}")
    lines.append(f"  {'migrations per period':32s} {'Lm':>5s} = {state.l_migrated:.1f}")
    emit("table1", "\n".join(lines))

    assert state.joins > 0
