"""Ablation: key-tree degree d and its effect on costs and gains.

The paper fixes d = 4.  This sweep shows the baseline batch cost and the
two-partition gains across degrees — the gain is a property of the
partitioning, not of one particular fan-out.
"""

from repro.analysis.twopartition import (
    TwoPartitionParameters,
    one_tree_cost,
    qt_cost,
    tt_cost,
)
from repro.experiments.report import Series

from bench_utils import emit

DEGREES = (2, 4, 8, 16)


def degree_series() -> Series:
    series = Series(
        title="Ablation — tree degree d (Table 1 operating point otherwise)",
        x_label="d",
        x_values=[float(d) for d in DEGREES],
    )
    base_costs, tt_gain, qt_gain = [], [], []
    for degree in DEGREES:
        params = TwoPartitionParameters(degree=degree)
        base = one_tree_cost(params)
        base_costs.append(base)
        tt_gain.append((base - tt_cost(params)) / base * 100)
        qt_gain.append((base - qt_cost(params)) / base * 100)
    series.add_column("one-keytree-cost", base_costs)
    series.add_column("TT-gain-%", tt_gain)
    series.add_column("QT-gain-%", qt_gain)
    return series


def test_degree_ablation(benchmark):
    series = benchmark.pedantic(degree_series, rounds=1, iterations=1)
    emit("ablation_degree", series.format_table())

    # Partitioning pays off at every practical degree.
    assert all(g > 10.0 for g in series.column("TT-gain-%"))
    assert all(g > 10.0 for g in series.column("QT-gain-%"))
