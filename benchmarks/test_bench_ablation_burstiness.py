"""Ablation: bursty (Gilbert–Elliott) vs independent (Bernoulli) loss.

The paper's transport models assume independent per-packet loss (eq. 13).
This ablation runs WKA-BKR and proactive FEC over both loss processes at
a *matched mean loss rate* and reports the measured wire cost — showing
how far the independence assumption bends under burstiness.
"""

import random

from repro.crypto.material import KeyGenerator
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.tree import KeyTree
from repro.network.channel import MulticastChannel
from repro.network.loss import BernoulliLoss, GilbertElliottLoss
from repro.transport.fec import ProactiveFecProtocol
from repro.transport.session import build_task
from repro.transport.wka_bkr import WkaBkrProtocol

from bench_utils import emit

GROUP = 256
DEPARTURES = 16
TRIALS = 5
MEAN_LOSS = 0.10


def make_bursty():
    # Stationary bad-state probability 0.2, bad loss 0.5 -> mean 0.10.
    return GilbertElliottLoss(
        p_good_to_bad=0.05, p_bad_to_good=0.20, good_loss=0.0, bad_loss=0.5
    )


def run(protocol_factory, loss_factory) -> int:
    total = 0
    for trial in range(TRIALS):
        tree = KeyTree(degree=4, keygen=KeyGenerator(trial))
        rekeyer = LkhRekeyer(tree)
        members = [f"m{i}" for i in range(GROUP)]
        rekeyer.rekey_batch(joins=[(m, None) for m in members])
        held = {
            m: {n.key.key_id: n.key.version for n in tree.path_of(m)}
            for m in members
        }
        victims = random.Random(trial).sample(members, DEPARTURES)
        message = rekeyer.rekey_batch(departures=victims)
        survivors = [m for m in members if m not in victims]
        task = build_task(message, {m: held[m] for m in survivors})
        channel = MulticastChannel(seed=2000 + trial)
        for m in survivors:
            channel.subscribe(m, loss_factory())
        outcome = protocol_factory().run(task, channel)
        assert outcome.satisfied
        total += outcome.keys_sent
    return total


def test_burstiness_ablation(benchmark):
    def measure():
        return {
            ("wka-bkr", "bernoulli"): run(
                lambda: WkaBkrProtocol(keys_per_packet=16),
                lambda: BernoulliLoss(MEAN_LOSS),
            ),
            ("wka-bkr", "bursty"): run(
                lambda: WkaBkrProtocol(keys_per_packet=16), make_bursty
            ),
            ("fec", "bernoulli"): run(
                lambda: ProactiveFecProtocol(keys_per_packet=16, block_size=8),
                lambda: BernoulliLoss(MEAN_LOSS),
            ),
            ("fec", "bursty"): run(
                lambda: ProactiveFecProtocol(keys_per_packet=16, block_size=8),
                make_bursty,
            ),
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "Ablation — loss burstiness at matched mean loss "
        f"({MEAN_LOSS:.0%}; wire keys over {TRIALS} sessions)"
    ]
    for (protocol, loss), keys in results.items():
        lines.append(f"  {protocol:8s} {loss:10s} {keys:7d} keys")
    emit("ablation_burstiness", "\n".join(lines))

    # Both transports must complete under burstiness; the cost ratio stays
    # within a small factor of the independent-loss cost.
    for protocol in ("wka-bkr", "fec"):
        ratio = results[(protocol, "bursty")] / results[(protocol, "bernoulli")]
        assert 0.5 < ratio < 2.5
