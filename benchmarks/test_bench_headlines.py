"""The abstract's headline numbers, paper vs this reproduction."""

import pytest

from repro.experiments.headlines import PAPER_CLAIMS, format_headlines, headline_numbers

from bench_utils import emit


def test_headline_numbers(benchmark):
    measured = benchmark.pedantic(headline_numbers, rounds=1, iterations=1)
    emit("headlines", format_headlines())

    assert measured["two_partition_peak_reduction_pct"] == pytest.approx(31.4, abs=3.0)
    assert measured["tt_reduction_at_defaults_pct"] == pytest.approx(25.0, abs=4.0)
    assert measured["pt_reduction_at_defaults_pct"] == pytest.approx(40.0, abs=4.0)
    assert measured["fig5_mean_reduction_pct"] > 22.0
    assert measured["loss_homog_peak_reduction_pct"] == pytest.approx(12.1, abs=2.5)
    assert measured["fec_gain_at_alpha_0.1_pct"] == pytest.approx(25.7, abs=10.0)
