"""Ablation: WKA packing order (BFS vs DFS), measured end to end.

[SZJ02] allows packing weighted keys breadth-first or depth-first; the
paper's models are packing-agnostic.  This benchmark runs both against the
same simulated lossy sessions and reports the measured wire cost.
"""

import random

from repro.crypto.material import KeyGenerator
from repro.keytree.lkh import LkhRekeyer
from repro.keytree.tree import KeyTree
from repro.network.channel import MulticastChannel
from repro.network.loss import BernoulliLoss
from repro.transport.session import build_task
from repro.transport.wka_bkr import WkaBkrProtocol

from bench_utils import emit

GROUP = 512
DEPARTURES = 24
LOSS = 0.12
TRIALS = 6


def run_packing(packing: str) -> int:
    total = 0
    for trial in range(TRIALS):
        tree = KeyTree(degree=4, keygen=KeyGenerator(trial))
        rekeyer = LkhRekeyer(tree)
        members = [f"m{i}" for i in range(GROUP)]
        rekeyer.rekey_batch(joins=[(m, None) for m in members])
        held = {
            m: {n.key.key_id: n.key.version for n in tree.path_of(m)}
            for m in members
        }
        victims = random.Random(trial).sample(members, DEPARTURES)
        message = rekeyer.rekey_batch(departures=victims)
        survivors = [m for m in members if m not in victims]
        task = build_task(message, {m: held[m] for m in survivors})
        channel = MulticastChannel(seed=1000 + trial)
        for m in survivors:
            channel.subscribe(m, BernoulliLoss(LOSS))
        protocol = WkaBkrProtocol(keys_per_packet=16, packing=packing)
        outcome = protocol.run(task, channel)
        assert outcome.satisfied
        total += outcome.keys_sent
    return total


def test_packing_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {"bfs": run_packing("bfs"), "dfs": run_packing("dfs")},
        rounds=1,
        iterations=1,
    )
    lines = [
        "Ablation — WKA packing order (wire keys over "
        f"{TRIALS} sessions, N={GROUP}, L={DEPARTURES}, p={LOSS})"
    ]
    for packing, keys in results.items():
        lines.append(f"  {packing}: {keys} keys")
    emit("ablation_packing", "\n".join(lines))

    # Both orders deliver; neither should be catastrophically worse.
    ratio = max(results.values()) / min(results.values())
    assert ratio < 1.25
