"""Fig. 7: rekeying cost vs fraction of misplaced receivers."""

from repro.experiments.fig7 import fig7_series

from bench_utils import emit


def test_fig7_misplacement_sweep(benchmark):
    series = benchmark.pedantic(fig7_series, rounds=1, iterations=1)
    emit("fig7", series.format_table(precision=2))

    one = series.column("one-keytree")[0]
    mis = series.column("mis-partitioned")
    correct = series.column("correctly-partitioned")[0]
    betas = series.x_values
    # beta = 0 equals the correctly partitioned cost; the gain decays with
    # beta; near beta = 0.8 the advantage is ~gone; beta = 1 recovers.
    assert abs(mis[0] - correct) < 1e-6
    grow_region = [m for b, m in zip(betas, mis) if b <= 0.8]
    assert grow_region == sorted(grow_region)
    at_08 = mis[betas.index(0.8)]
    assert abs(at_08 - one) / one < 0.02
    assert mis[-1] < at_08
    # Small misplacement (beta <= 0.1) still beats one keytree.
    assert mis[betas.index(0.1)] < one
