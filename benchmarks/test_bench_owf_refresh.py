"""Extension benchmark: ELK/LKH+ one-way join refresh vs random refresh.

Join-only rekey periods under the OWF mode cost only the joiner's
bootstrap wraps (existing members advance their keys locally, zero
multicast); random refresh pays ~d wraps per refreshed node.  Departure
periods are identical in both modes (one-way advancement cannot evict).

The win is largest exactly where individual rekeying hurts LKH most —
*sparse* joins, one per period.  Mass-join batches amortize the random
refresh across shared ancestors (and a saturated tree splits a leaf per
join either way), shrinking the OWF edge — which is why the paper-track
servers keep random refresh as the default.
"""

from repro.crypto.material import KeyGenerator
from repro.experiments.report import Series
from repro.server.onetree import OneTreeServer

from bench_utils import emit

SEED_MEMBERS = 200
PERIODS = 20
JOINS_PER_PERIOD = 1
DEPART_EVERY = 4  # every 4th period also evicts members


def run(mode: str) -> Series:
    server = OneTreeServer(
        degree=4, keygen=KeyGenerator(3), join_refresh=mode, group=f"g-{mode}"
    )
    for i in range(SEED_MEMBERS):
        server.join(f"seed{i}", at_time=0.0)
    server.rekey(now=0.0)
    costs = []
    counter = 0
    for period in range(1, PERIODS + 1):
        for __ in range(JOINS_PER_PERIOD):
            server.join(f"j{counter}", at_time=period * 60.0)
            counter += 1
        if period % DEPART_EVERY == 0:
            victims = [m for m in server.members() if m.startswith("seed")][:3]
            for victim in victims:
                server.leave(victim, at_time=period * 60.0)
        costs.append(server.rekey(now=period * 60.0).cost)
    series = Series(
        title="", x_label="period", x_values=[float(p) for p in range(1, PERIODS + 1)]
    )
    series.add_column(mode, costs)
    return series


def test_owf_join_refresh(benchmark):
    def measure():
        return {mode: run(mode) for mode in ("random", "owf")}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    series = Series(
        title=(
            "Extension — ELK/LKH+ one-way join refresh "
            f"(N≈{SEED_MEMBERS}, {JOINS_PER_PERIOD} joins/period, "
            f"departures every {DEPART_EVERY}th period)"
        ),
        x_label="period",
        x_values=results["random"].x_values,
    )
    series.add_column("random-refresh", results["random"].column("random"))
    series.add_column("owf-refresh", results["owf"].column("owf"))
    emit("owf_refresh", series.format_table())

    random_costs = series.column("random-refresh")
    owf_costs = series.column("owf-refresh")
    join_only = [
        i for i in range(PERIODS) if (i + 1) % DEPART_EVERY != 0
    ]
    # Join-only periods: OWF strictly cheaper in aggregate.
    assert sum(owf_costs[i] for i in join_only) < sum(
        random_costs[i] for i in join_only
    )
    # Departure periods: identical machinery, comparable cost.
    departure_periods = [i for i in range(PERIODS) if (i + 1) % DEPART_EVERY == 0]
    for i in departure_periods:
        assert owf_costs[i] > 0
