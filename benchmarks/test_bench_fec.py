"""Section 4.4: loss homogenization under proactive-FEC transport."""

from repro.experiments.fec_gain import fec_gain_series

from bench_utils import emit


def test_fec_gain_sweep(benchmark):
    series = benchmark.pedantic(
        fec_gain_series,
        kwargs={"alpha_values": [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0]},
        rounds=1,
        iterations=1,
    )
    emit("fec_gain", series.format_table(precision=2))

    gains = dict(zip(series.x_values, series.column("gain-%")))
    # Endpoints fall back to one keytree; the alpha = 0.1 gain lands in
    # the paper's band (25.7% reported; protocol constants unreported).
    assert gains[0.0] == 0.0
    assert gains[1.0] == 0.0
    assert 15.0 < gains[0.1] < 45.0
    # FEC is *more* sensitive to the high-loss minority than WKA-BKR
    # (Section 4.4's observation).
    from repro.analysis.losshomog import loss_homogenized_cost, one_keytree_cost

    mixture = ((0.20, 0.1), (0.02, 0.9))
    wka_gain = 100 * (
        1
        - loss_homogenized_cost(65_536, 256, mixture, 4)
        / one_keytree_cost(65_536, 256, mixture, 4)
    )
    assert gains[0.1] > wka_gain
