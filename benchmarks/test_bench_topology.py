"""Extension benchmark: topology-aware key-tree placement [BB01].

Measures the multicast link cost of identical departure batches when the
key tree is aligned with the multicast topology vs randomly placed
(Section 2.3's "organizing members in a key tree according to their
topological locations would also be very beneficial").
"""

from repro.experiments.topology import topology_gain

from bench_utils import emit

SEEDS = (0, 1, 2, 3)


def measure():
    totals = {"clustered": 0, "random": 0}
    keys = {"clustered": 0, "random": 0}
    for seed in SEEDS:
        results = topology_gain(receiver_count=256, departure_count=16, seed=seed)
        for name, result in results.items():
            totals[name] += result.total_link_cost
            keys[name] += result.encrypted_keys
    return totals, keys


def test_topology_aware_placement(benchmark):
    totals, keys = benchmark.pedantic(measure, rounds=1, iterations=1)
    saving = (totals["random"] - totals["clustered"]) / totals["random"] * 100
    lines = [
        "Extension — topology-aware vs random key-tree placement "
        f"({len(SEEDS)} topologies, N=256, L=16)"
    ]
    for name in ("clustered", "random"):
        lines.append(
            f"  {name:10s} {totals[name]:6d} link-transmissions "
            f"for {keys[name]} encrypted keys"
        )
    lines.append(f"  link saving: {saving:.1f}%")
    emit("topology", "\n".join(lines))

    assert totals["clustered"] < totals["random"]
