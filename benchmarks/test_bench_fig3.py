"""Fig. 3: key-server rekeying cost vs S-period K (four schemes)."""

from repro.experiments.fig3 import fig3_series

from bench_utils import emit


def test_fig3_s_period_sweep(benchmark):
    series = benchmark.pedantic(fig3_series, rounds=1, iterations=1)
    emit("fig3", series.format_table())

    one = series.column("one-keytree")
    tt = series.column("TT-scheme")
    qt = series.column("QT-scheme")
    pt = series.column("PT-scheme")
    # Paper shape assertions: collapse at K=0, TT minimum well below the
    # baseline, PT flat and best, TT beats QT at K=20.
    assert one[0] == tt[0] == qt[0]
    assert min(tt) < 0.80 * one[0]
    assert all(p <= t + 1e-9 for p, t in zip(pt[1:], tt[1:]))
    assert tt[-1] < qt[-1]
