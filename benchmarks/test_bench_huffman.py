"""Extension benchmark: probabilistic (Huffman) tree organization [SMS00].

Section 2.3 of the paper cites Selcuk et al.: unbalancing the key tree by
departure probability can beat the balanced tree.  This benchmark sweeps
the skew of the departure distribution and reports expected per-departure
cost for the Huffman organization vs the balanced tree, with the entropy
floor for context.
"""

from repro.experiments.report import Series
from repro.keytree.probabilistic import (
    HuffmanKeyTree,
    balanced_expected_departure_cost,
    entropy_lower_bound,
)

from bench_utils import emit

MEMBERS = 1024
HEAVY_FRACTION = 0.1
SKEWS = (1.0, 2.0, 5.0, 20.0, 100.0)


def skew_series() -> Series:
    series = Series(
        title=(
            "Extension — Huffman vs balanced key tree "
            f"(N={MEMBERS}, {HEAVY_FRACTION:.0%} heavy members, d=4)"
        ),
        x_label="skew",
        x_values=list(SKEWS),
    )
    heavy_count = int(MEMBERS * HEAVY_FRACTION)
    huffman, balanced, floor = [], [], []
    for skew in SKEWS:
        weights = {
            f"m{i}": (skew if i < heavy_count else 1.0) for i in range(MEMBERS)
        }
        tree = HuffmanKeyTree(weights, degree=4)
        huffman.append(tree.expected_departure_cost())
        balanced.append(balanced_expected_departure_cost(MEMBERS, 4))
        floor.append(4 * entropy_lower_bound(list(weights.values()), 4))
    series.add_column("huffman", huffman)
    series.add_column("balanced", balanced)
    series.add_column("d*entropy-floor", floor)
    return series


def test_huffman_vs_balanced(benchmark):
    series = benchmark.pedantic(skew_series, rounds=1, iterations=1)
    emit("huffman", series.format_table(precision=2))

    huffman = series.column("huffman")
    balanced = series.column("balanced")
    # No skew: parity (within integer-depth slack).  Strong skew: clear win.
    assert huffman[0] <= balanced[0] * 1.10
    assert huffman[-1] < 0.8 * balanced[-1]
    # Gains grow with skew (non-increasing cost ratio, small tolerance for
    # the near-tie at skew ~1 where Huffman ~= balanced).
    ratios = [h / b for h, b in zip(huffman, balanced)]
    assert all(b <= a + 0.01 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] < ratios[0]
